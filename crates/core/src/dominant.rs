//! Dominant task set extraction (Algorithm 1 of the paper).
//!
//! A charger can rotate continuously, but only finitely many *sets of
//! covered tasks* exist; among those only the maximal ("dominant") ones
//! matter for optimization (Definition 4.1). The paper's Algorithm 1 rotates
//! the charger through `2π`, recording each maximal covered set. This module
//! implements the equivalent anchored sweep:
//!
//! every covered set is contained in the covered set of some window of width
//! `A_s` whose *start boundary sits exactly on a task azimuth* (rotate the
//! window counter-clockwise until its start hits the first covered task's
//! azimuth — nothing leaves, things may enter). So it suffices to enumerate
//! the `|T_i|` anchored windows, collect their covered sets, and discard
//! duplicates and non-maximal sets.

use haste_geometry::{Angle, TAU};
use haste_model::{CandidateTask, TaskId};

/// One dominant task set of a charger, with the canonical orientation that
/// covers it and each member's precomputed range power.
#[derive(Debug, Clone, PartialEq)]
pub struct DominantSet {
    /// An orientation whose charging sector covers every member.
    pub orientation: Angle,
    /// Member tasks with their `P_r(s_i, o_j)` in watts, sorted by task id.
    pub members: Vec<(TaskId, f64)>,
}

impl DominantSet {
    /// Ids of the member tasks.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.members.iter().map(|&(t, _)| t)
    }

    /// Whether this set contains the given task.
    pub fn contains(&self, task: TaskId) -> bool {
        self.members
            .binary_search_by_key(&task, |&(t, _)| t)
            .is_ok()
    }
}

/// Extracts all dominant task sets of a charger with charging angle
/// `charging_angle` over the given candidate tasks (the orientation-free
/// chargeable set `T_i`, e.g. from
/// [`CoverageMap::tasks_of`](haste_model::CoverageMap::tasks_of), optionally
/// pre-filtered to the tasks active in one slot).
///
/// Returns sets sorted by orientation; each set's members are sorted by task
/// id. Complexity `O(d² log d)` for `d` candidates — dominated by the
/// pairwise maximality filter, negligible at HASTE scales.
///
/// ```
/// use haste_core::extract_dominant_sets;
/// use haste_geometry::Angle;
/// use haste_model::{CandidateTask, TaskId};
///
/// // Three reachable tasks at 10°, 40° and 200°; a 60°-wide charging
/// // sector can cover the first two together but never the third with
/// // them.
/// let candidates = [
///     CandidateTask { task: TaskId(0), azimuth: Angle::from_degrees(10.0), power: 1.0 },
///     CandidateTask { task: TaskId(1), azimuth: Angle::from_degrees(40.0), power: 1.0 },
///     CandidateTask { task: TaskId(2), azimuth: Angle::from_degrees(200.0), power: 1.0 },
/// ];
/// let sets = extract_dominant_sets(&candidates, 60f64.to_radians());
/// assert_eq!(sets.len(), 2);
/// assert!(sets.iter().any(|s| s.contains(TaskId(0)) && s.contains(TaskId(1))));
/// ```
pub fn extract_dominant_sets(
    candidates: &[CandidateTask],
    charging_angle: f64,
) -> Vec<DominantSet> {
    if candidates.is_empty() {
        return Vec::new();
    }
    // A full-circle charger has exactly one dominant set: everything.
    if charging_angle >= TAU - 1e-12 {
        let mut members: Vec<(TaskId, f64)> =
            candidates.iter().map(|c| (c.task, c.power)).collect();
        members.sort_by_key(|&(t, _)| t);
        return vec![DominantSet {
            orientation: Angle::ZERO,
            members,
        }];
    }

    let half = charging_angle / 2.0;
    // Anchored windows: one per candidate azimuth.
    let mut sets: Vec<DominantSet> = Vec::with_capacity(candidates.len());
    for anchor in candidates {
        let start = anchor.azimuth;
        let mut members: Vec<(TaskId, f64)> = candidates
            .iter()
            .filter(|c| start.ccw_delta(c.azimuth).radians() <= charging_angle + 1e-12)
            .map(|c| (c.task, c.power))
            .collect();
        members.sort_by_key(|&(t, _)| t);
        sets.push(DominantSet {
            // The window is [start, start + A_s]; its covering orientation
            // is the bisector.
            orientation: start + Angle::from_radians(half),
            members,
        });
    }

    // Deduplicate identical member sets (keep the first orientation).
    sets.sort_by(|a, b| {
        a.members
            .len()
            .cmp(&b.members.len())
            .reverse()
            .then_with(|| a.members.partial_cmp(&b.members).expect("finite"))
    });
    sets.dedup_by(|a, b| a.members == b.members);

    // Drop non-maximal sets. Sets are sorted by decreasing size, so any
    // superset of `sets[i]` appears before it.
    let mut maximal: Vec<DominantSet> = Vec::with_capacity(sets.len());
    'outer: for set in sets {
        for bigger in &maximal {
            if is_subset(&set.members, &bigger.members) {
                continue 'outer;
            }
        }
        maximal.push(set);
    }
    maximal.sort_by(|a, b| {
        a.orientation
            .radians()
            .partial_cmp(&b.orientation.radians())
            .expect("finite")
    });
    maximal
}

/// Whether every member of `small` (sorted by id) appears in `big` (sorted).
fn is_subset(small: &[(TaskId, f64)], big: &[(TaskId, f64)]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut it = big.iter();
    'outer: for &(t, _) in small {
        for &(u, _) in it.by_ref() {
            match u.cmp(&t) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, azimuth_deg: f64) -> CandidateTask {
        CandidateTask {
            task: TaskId(id),
            azimuth: Angle::from_degrees(azimuth_deg),
            power: 1.0 + id as f64,
        }
    }

    fn ids(set: &DominantSet) -> Vec<u32> {
        set.task_ids().map(|t| t.0).collect()
    }

    #[test]
    fn empty_candidates() {
        assert!(extract_dominant_sets(&[], 1.0).is_empty());
    }

    #[test]
    fn single_task_single_set() {
        let sets = extract_dominant_sets(&[cand(0, 45.0)], 60f64.to_radians());
        assert_eq!(sets.len(), 1);
        assert_eq!(ids(&sets[0]), vec![0]);
        // Orientation bisects the anchored window [45°, 105°].
        assert!((sets[0].orientation.degrees() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn paper_toy_example_structure() {
        // Six tasks around the circle with a 90° charging angle, loosely
        // mimicking Fig. 2: consecutive clusters yield overlapping maximal
        // sets.
        let candidates = vec![
            cand(0, 0.0),
            cand(1, 30.0),
            cand(2, 60.0),
            cand(3, 120.0),
            cand(4, 200.0),
            cand(5, 300.0),
        ];
        let sets = extract_dominant_sets(&candidates, 90f64.to_radians());
        let all: Vec<Vec<u32>> = sets.iter().map(ids).collect();
        // Anchored windows: [0°,90°]→{0,1,2}; [30°,120°]→{1,2,3};
        // [120°,210°]→{3,4}; [200°,290°]→{4} (dominated);
        // [300°,30°] wraps →{0,1,5} (30° sits on the closed boundary).
        assert!(all.contains(&vec![0, 1, 2]));
        assert!(all.contains(&vec![1, 2, 3]));
        assert!(all.contains(&vec![3, 4]));
        assert!(all.contains(&vec![0, 1, 5]));
        // {4} alone is dominated by {3,4}; {2,3} by {1,2,3}.
        assert!(!all.contains(&vec![4]));
        assert!(!all.contains(&vec![2, 3]));
        assert_eq!(sets.len(), 4);
    }

    #[test]
    fn full_circle_covers_everything_in_one_set() {
        let candidates = vec![cand(0, 10.0), cand(1, 170.0), cand(2, 350.0)];
        let sets = extract_dominant_sets(&candidates, TAU);
        assert_eq!(sets.len(), 1);
        assert_eq!(ids(&sets[0]), vec![0, 1, 2]);
    }

    #[test]
    fn coincident_azimuths_merge() {
        let candidates = vec![cand(0, 90.0), cand(1, 90.0), cand(2, 270.0)];
        let sets = extract_dominant_sets(&candidates, 60f64.to_radians());
        let all: Vec<Vec<u32>> = sets.iter().map(ids).collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&vec![0, 1]));
        assert!(all.contains(&vec![2]));
    }

    #[test]
    fn wraparound_window() {
        let candidates = vec![cand(0, 350.0), cand(1, 10.0), cand(2, 180.0)];
        let sets = extract_dominant_sets(&candidates, 40f64.to_radians());
        let all: Vec<Vec<u32>> = sets.iter().map(ids).collect();
        assert!(
            all.contains(&vec![0, 1]),
            "wrap-around pair missed: {all:?}"
        );
        assert!(all.contains(&vec![2]));
    }

    #[test]
    fn every_set_is_coverable_by_its_orientation() {
        // Property: for each dominant set, the reported orientation's window
        // of half-width A_s/2 contains every member azimuth.
        let candidates: Vec<CandidateTask> = (0..12)
            .map(|i| cand(i, (i as f64 * 37.0) % 360.0))
            .collect();
        let a_s = 75f64.to_radians();
        for set in extract_dominant_sets(&candidates, a_s) {
            for (t, _) in &set.members {
                let az = candidates.iter().find(|c| c.task == *t).unwrap().azimuth;
                assert!(
                    az.within(set.orientation, a_s / 2.0),
                    "task {t:?} not covered by orientation {}",
                    set.orientation
                );
            }
        }
    }

    #[test]
    fn no_set_is_subset_of_another() {
        let candidates: Vec<CandidateTask> = (0..15)
            .map(|i| cand(i, (i as f64 * 53.0) % 360.0))
            .collect();
        let sets = extract_dominant_sets(&candidates, 100f64.to_radians());
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    assert!(!is_subset(&a.members, &b.members), "set {i} ⊆ set {j}");
                }
            }
        }
    }

    #[test]
    fn subset_helper() {
        let a = vec![(TaskId(1), 0.0), (TaskId(3), 0.0)];
        let b = vec![(TaskId(1), 0.0), (TaskId(2), 0.0), (TaskId(3), 0.0)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
        let c = vec![(TaskId(4), 0.0)];
        assert!(!is_subset(&c, &b));
    }

    #[test]
    fn contains_uses_binary_search() {
        let set = DominantSet {
            orientation: Angle::ZERO,
            members: vec![(TaskId(2), 1.0), (TaskId(5), 1.0), (TaskId(9), 1.0)],
        };
        assert!(set.contains(TaskId(5)));
        assert!(!set.contains(TaskId(4)));
    }
}
