//! The centralized offline algorithm (Algorithm 2 of the paper).
//!
//! Builds the HASTE-R instance, maximizes its submodular objective with
//! TabularGreedy (`C` colors; `C = 1` degenerates to locally greedy), and
//! materializes the resulting orientation schedule. Achieves
//! `(1 − ρ)(1 − 1/e)` of the HASTE optimum as `C → ∞` (Theorem 5.1), and
//! `(1 − ρ)/2` at `C = 1`.

use std::time::Instant;

use haste_model::{evaluate, CoverageMap, EvalOptions, EvalReport, Scenario, Schedule};
use haste_submodular::{
    lazy_greedy_with_stats, locally_greedy_with_stats, tabular_greedy_with_stats, GreedyOptions,
    TabularOptions,
};

use crate::instance::{DominantScope, HasteRInstance, InstanceOptions};
use crate::metrics::SolverMetrics;

/// Configuration of the centralized offline solver.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Number of TabularGreedy colors `C` (1 = plain locally greedy).
    pub colors: usize,
    /// Monte-Carlo samples for the color expectation (`C > 1` only).
    pub samples: usize,
    /// RNG seed for TabularGreedy.
    pub seed: u64,
    /// Break exact gain ties toward the charger's previous orientation to
    /// avoid gratuitous switching delay (`C = 1` path only).
    pub switch_aware: bool,
    /// Dominant-set extraction scope.
    pub scope: DominantScope,
    /// With `colors <= 1`, use Minoux's lazy greedy (globally ordered,
    /// priority-queue accelerated) instead of the block-ordered locally
    /// greedy. Same 1/2 guarantee; usually fewer oracle calls, but without
    /// switch-aware tie-breaking.
    pub lazy: bool,
    /// Worker threads for instance construction and the optimizer's argmax
    /// scans (1 = sequential, 0 = auto-detect via
    /// [`haste_parallel::default_threads`]). The solution is bit-identical
    /// for every value — parallelism only changes wall-clock.
    pub threads: usize,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            colors: 4,
            samples: 16,
            seed: 0,
            switch_aware: true,
            scope: DominantScope::PerSlot,
            lazy: false,
            threads: 1,
        }
    }
}

impl OfflineConfig {
    /// Plain locally greedy (`C = 1`) configuration.
    pub fn greedy() -> Self {
        OfflineConfig {
            colors: 1,
            ..OfflineConfig::default()
        }
    }

    /// TabularGreedy with the given number of colors.
    pub fn with_colors(colors: usize) -> Self {
        OfflineConfig {
            colors,
            ..OfflineConfig::default()
        }
    }
}

/// The outcome of the offline solver.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The orientation schedule for all chargers and slots.
    pub schedule: Schedule,
    /// Objective value under HASTE-R (no switching delay) as reported by
    /// the optimizer.
    pub relaxed_value: f64,
    /// Full P1 evaluation of the schedule (switching delay included).
    pub report: EvalReport,
    /// Oracle-call counters and per-phase wall-clock of this solve.
    pub metrics: SolverMetrics,
}

/// Runs Algorithm 2 on a scenario.
pub fn solve_offline(
    scenario: &Scenario,
    coverage: &CoverageMap,
    config: &OfflineConfig,
) -> SolveResult {
    let threads = haste_parallel::resolve_threads(config.threads);
    let mut metrics = SolverMetrics {
        threads,
        ..SolverMetrics::default()
    };

    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let t0 = Instant::now();
    let instance = HasteRInstance::build_with(
        scenario,
        coverage,
        InstanceOptions {
            scope: Some(config.scope),
            threads: Some(threads),
            ..InstanceOptions::default()
        },
    );
    metrics.instance_build = t0.elapsed();

    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let t1 = Instant::now();
    let (selection, stats) = if config.colors <= 1 && config.lazy {
        lazy_greedy_with_stats(&instance, 0.0, threads)
    } else if config.colors <= 1 {
        let tie = instance.switch_avoiding_tie_break();
        let options = GreedyOptions {
            tie_break: config.switch_aware.then_some(&tie as _),
            threads,
            ..GreedyOptions::default()
        };
        locally_greedy_with_stats(&instance, &options)
    } else {
        tabular_greedy_with_stats(
            &instance,
            &TabularOptions {
                colors: config.colors,
                samples: config.samples,
                seed: config.seed,
                min_gain: 0.0,
                threads,
            },
        )
    };
    metrics.greedy = t1.elapsed();
    metrics.absorb_stats(&stats);

    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let t2 = Instant::now();
    let mut schedule = instance.materialize(&selection);
    // Chargers hold their last orientation through unassigned slots: free
    // top-up charging at zero switching cost (see Schedule::hold_orientations).
    schedule.hold_orientations();
    metrics.rounding = t2.elapsed();

    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let t3 = Instant::now();
    let report = evaluate(scenario, coverage, &schedule, EvalOptions::default());
    metrics.p1_eval = t3.elapsed();

    SolveResult {
        schedule,
        relaxed_value: selection.value,
        report,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Task, TimeGrid};

    fn two_task_scenario(rho: f64) -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(4),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![
                Task::new(
                    0,
                    Vec2::new(10.0, 0.0),
                    Angle::from_degrees(180.0),
                    0,
                    4,
                    480.0,
                    0.5,
                ),
                Task::new(
                    1,
                    Vec2::new(0.0, 10.0),
                    Angle::from_degrees(270.0),
                    0,
                    2,
                    480.0,
                    0.5,
                ),
            ],
            rho,
            0,
        )
        .unwrap()
    }

    #[test]
    fn offline_solves_and_reports_consistent_values() {
        let s = two_task_scenario(0.0);
        let cov = CoverageMap::build(&s);
        let result = solve_offline(&s, &cov, &OfflineConfig::default());
        // With ρ = 0, P1 evaluation equals the relaxed value.
        assert!(
            (result.relaxed_value - result.report.total_utility).abs() < 1e-9,
            "relaxed {} vs evaluated {}",
            result.relaxed_value,
            result.report.total_utility
        );
        assert!(result.report.total_utility > 0.0);
    }

    #[test]
    fn switching_delay_only_hurts() {
        let s0 = two_task_scenario(0.0);
        let s5 = two_task_scenario(0.5);
        let cov = CoverageMap::build(&s0);
        let r0 = solve_offline(&s0, &cov, &OfflineConfig::greedy());
        let r5 = solve_offline(&s5, &cov, &OfflineConfig::greedy());
        assert!(r5.report.total_utility <= r0.report.total_utility + 1e-12);
        // And never below the (1-ρ) worst case of its own relaxed value.
        assert!(r5.report.total_utility >= (1.0 - 0.5) * r5.relaxed_value - 1e-9);
    }

    #[test]
    fn tabular_beats_or_matches_greedy_here() {
        let s = two_task_scenario(0.0);
        let cov = CoverageMap::build(&s);
        let greedy = solve_offline(&s, &cov, &OfflineConfig::greedy());
        let tabular = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                colors: 8,
                samples: 64,
                seed: 3,
                ..OfflineConfig::default()
            },
        );
        assert!(tabular.relaxed_value >= greedy.relaxed_value - 1e-9);
    }

    #[test]
    fn switch_aware_tie_break_reduces_switches() {
        // Symmetric tasks make every slot a tie; switch-aware greedy should
        // hold one orientation instead of oscillating.
        let s = two_task_scenario(0.25);
        let cov = CoverageMap::build(&s);
        let aware = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                switch_aware: true,
                ..OfflineConfig::greedy()
            },
        );
        let naive = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                switch_aware: false,
                ..OfflineConfig::greedy()
            },
        );
        assert!(aware.report.total_switches() <= naive.report.total_switches());
    }

    #[test]
    fn lazy_greedy_strategy_is_equivalent_quality() {
        let s = two_task_scenario(0.0);
        let cov = CoverageMap::build(&s);
        let eager = solve_offline(&s, &cov, &OfflineConfig::greedy());
        let lazy = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                lazy: true,
                ..OfflineConfig::greedy()
            },
        );
        // Lazy greedy visits elements globally by gain; on this instance it
        // finds at least the locally greedy value (both carry the same 1/2
        // guarantee in general).
        assert!(lazy.relaxed_value >= 0.9 * eager.relaxed_value - 1e-9);
        // Its reported value must also replay correctly.
        let replay = haste_model::evaluate_relaxed(&s, &cov, &lazy.schedule);
        assert!((lazy.relaxed_value - replay.total_utility).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_monotone_sane() {
        let s = two_task_scenario(0.0);
        let cov = CoverageMap::build(&s);
        let r = solve_offline(&s, &cov, &OfflineConfig::default());
        let m = &r.metrics;
        assert_eq!(m.threads, 1);
        // Something was scanned and something was committed.
        assert!(m.oracle_marginals > 0);
        assert!(m.oracle_commits > 0);
        // Commits never exceed marginal evaluations: every commit follows a
        // winning scan.
        assert!(m.oracle_commits <= m.oracle_marginals);
        assert!(m.total_time() >= m.greedy);
        // Coverage build happens outside the solver.
        assert_eq!(m.coverage_build, std::time::Duration::ZERO);
    }

    #[test]
    fn threads_do_not_change_the_solution() {
        let s = two_task_scenario(0.25);
        let cov = CoverageMap::build(&s);
        for base in [
            OfflineConfig::default(),
            OfflineConfig::greedy(),
            OfflineConfig {
                lazy: true,
                ..OfflineConfig::greedy()
            },
        ] {
            let seq = solve_offline(&s, &cov, &base);
            let par = solve_offline(&s, &cov, &OfflineConfig { threads: 4, ..base });
            assert_eq!(seq.schedule, par.schedule);
            assert_eq!(seq.relaxed_value.to_bits(), par.relaxed_value.to_bits());
            // Oracle counters are arithmetic → thread-invariant too.
            assert_eq!(seq.metrics.oracle_marginals, par.metrics.oracle_marginals);
            assert_eq!(seq.metrics.oracle_commits, par.metrics.oracle_commits);
        }
    }

    #[test]
    fn threads_zero_means_auto_detect() {
        // `threads: 0` resolves to the machine's parallelism — uniformly
        // across every config that carries the knob — and never changes the
        // solution (parallel paths are bit-deterministic).
        let s = two_task_scenario(0.25);
        let cov = CoverageMap::build(&s);
        let auto = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                threads: 0,
                ..OfflineConfig::default()
            },
        );
        assert_eq!(auto.metrics.threads, haste_parallel::default_threads());
        let seq = solve_offline(&s, &cov, &OfflineConfig::default());
        assert_eq!(auto.schedule, seq.schedule);
        assert_eq!(auto.relaxed_value.to_bits(), seq.relaxed_value.to_bits());
        // The instance builder shares the convention: `Some(0)` is auto,
        // `None` stays sequential.
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                threads: Some(0),
                ..InstanceOptions::default()
            },
        );
        let inst_seq = HasteRInstance::build_with(&s, &cov, InstanceOptions::default());
        assert_eq!(inst.ground_set_size(), inst_seq.ground_set_size());
    }

    #[test]
    fn empty_scenario_yields_empty_schedule() {
        let mut s = two_task_scenario(0.0);
        s.tasks.clear();
        let cov = CoverageMap::build(&s);
        let result = solve_offline(&s, &cov, &OfflineConfig::default());
        assert_eq!(result.report.total_utility, 0.0);
        assert_eq!(result.schedule.switch_count(haste_model::ChargerId(0)), 0);
    }
}
