//! The HASTE algorithms — the paper's primary contribution.
//!
//! * [`extract_dominant_sets`] — Algorithm 1: reduce the continuous
//!   orientation space of a charger to its finitely many maximal covered
//!   task sets,
//! * [`HasteRInstance`] — the reformulated problem RP2: a monotone
//!   submodular objective over a partition-matroid ground set of
//!   (charger, slot, dominant set) scheduling policies,
//! * [`solve_offline`] — Algorithm 2: the centralized offline scheduler
//!   (TabularGreedy, `(1 − ρ)(1 − 1/e)` approximation),
//! * [`solve_baseline`] — the GreedyUtility / GreedyCover comparison
//!   algorithms,
//! * [`solve_exact`] — brute-force optimum for small instances.
//!
//! The distributed online algorithm (Algorithm 3) lives in
//! `haste-distributed`, built on the same instance machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod dominant;
mod emr_solver;
mod exact;
mod instance;
mod metrics;
mod offline;

pub use baselines::{solve_baseline, solve_baseline_with_delay, BaselineKind};
pub use dominant::{extract_dominant_sets, DominantSet};
pub use emr_solver::{solve_offline_emr, EmrOptions, EmrResult};
pub use exact::{solve_exact, BruteForceError};
pub use instance::{DominantScope, EnergyState, HasteRInstance, InstanceOptions, Policy};
pub use metrics::SolverMetrics;
pub use offline::{solve_offline, OfflineConfig, SolveResult};
