//! Per-solve instrumentation: oracle-call counters and phase timings.
//!
//! Counters come from the optimizers' [`OptimizerStats`] and are exact and
//! thread-count-invariant (they are computed from loop bounds, not sampled).
//! Timings are wall-clock per solver phase; the coverage-build phase happens
//! outside [`crate::solve_offline`] (callers build the [`CoverageMap`] once
//! and reuse it), so solvers leave it zero and the bench binaries fill it in
//! when they time the build themselves.
//!
//! [`CoverageMap`]: haste_model::CoverageMap

use std::fmt;
use std::time::Duration;

use haste_submodular::OptimizerStats;

/// Instrumentation of one solver run (or, for the online loop, the sum over
/// all re-plan events).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverMetrics {
    /// Worker threads the solve was configured with (0 is normalized to 1).
    pub threads: usize,
    /// Marginal-gain oracle evaluations across all optimizer runs.
    pub oracle_marginals: u64,
    /// Commit operations applied to optimizer states.
    pub oracle_commits: u64,
    /// Wall-clock spent building the chargeability [`haste_model::CoverageMap`]
    /// (zero unless the caller timed it; see module docs).
    pub coverage_build: Duration,
    /// Wall-clock spent building the HASTE-R instance (dominant-set
    /// extraction and policy families).
    pub instance_build: Duration,
    /// Wall-clock spent inside the greedy / tabular optimizer.
    pub greedy: Duration,
    /// Wall-clock spent materializing the selection into a schedule
    /// (including orientation holding).
    pub rounding: Duration,
    /// Wall-clock spent in the full-fidelity P1 evaluation of the schedule.
    pub p1_eval: Duration,
}

impl SolverMetrics {
    /// Sum of all phase timings.
    pub fn total_time(&self) -> Duration {
        self.coverage_build + self.instance_build + self.greedy + self.rounding + self.p1_eval
    }

    /// Folds the optimizer's oracle counters into these metrics.
    pub fn absorb_stats(&mut self, stats: &OptimizerStats) {
        self.oracle_marginals += stats.marginal_calls;
        self.oracle_commits += stats.commit_calls;
    }

    /// Accumulates another solve's metrics (counters add, timings add; the
    /// thread count is taken from `other` — merged runs share one config).
    pub fn merge(&mut self, other: &SolverMetrics) {
        self.threads = other.threads.max(self.threads);
        self.oracle_marginals += other.oracle_marginals;
        self.oracle_commits += other.oracle_commits;
        self.coverage_build += other.coverage_build;
        self.instance_build += other.instance_build;
        self.greedy += other.greedy;
        self.rounding += other.rounding;
        self.p1_eval += other.p1_eval;
    }
}

impl fmt::Display for SolverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        write!(
            f,
            "oracle: {} marginals, {} commits | coverage {:.1} ms, \
             instance {:.1} ms, greedy {:.1} ms, rounding {:.1} ms, \
             eval {:.1} ms | {} thread{}",
            self.oracle_marginals,
            self.oracle_commits,
            ms(self.coverage_build),
            ms(self.instance_build),
            ms(self.greedy),
            ms(self.rounding),
            ms(self.p1_eval),
            self.threads.max(1),
            if self.threads.max(1) == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_timings() {
        let mut a = SolverMetrics {
            threads: 1,
            oracle_marginals: 10,
            oracle_commits: 2,
            greedy: Duration::from_millis(5),
            ..SolverMetrics::default()
        };
        let b = SolverMetrics {
            threads: 4,
            oracle_marginals: 30,
            oracle_commits: 4,
            instance_build: Duration::from_millis(7),
            ..SolverMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.threads, 4);
        assert_eq!(a.oracle_marginals, 40);
        assert_eq!(a.oracle_commits, 6);
        assert_eq!(a.total_time(), Duration::from_millis(12));
    }

    #[test]
    fn display_is_single_line() {
        let m = SolverMetrics::default();
        let s = format!("{m}");
        assert!(!s.contains('\n'));
        assert!(s.contains("marginals"));
    }
}
