//! EMR-constrained offline scheduling.
//!
//! The paper's companion line of work (Safe Charging / SCAPE, refs.
//! [42]–[48]) adds a safety constraint to charger scheduling: the aggregate
//! electromagnetic radiation may not exceed a threshold `R_t` at any point
//! of the field, at any time. This module layers that constraint onto the
//! HASTE machinery: a slot-major greedy that, before selecting a scheduling
//! policy, checks the candidate orientation against the radiation already
//! committed in the same slot over a grid of sample points, and skips
//! infeasible choices.
//!
//! No approximation ratio is claimed — the EMR-constrained problem is not
//! a partition matroid (the constraint couples chargers within a slot) and
//! has its own literature; this is the natural greedy heuristic on top of
//! the HASTE-R objective, offered as an extension.

use haste_geometry::Vec2;
use haste_model::{emr, evaluate, CoverageMap, EvalOptions, Scenario};
use haste_submodular::PartitionedObjective;

use crate::instance::{DominantScope, HasteRInstance};
use crate::offline::SolveResult;

/// Options of the EMR-constrained solver.
#[derive(Debug, Clone)]
pub struct EmrOptions {
    /// Radiation threshold `R_t` (same unit as the charging power model).
    pub threshold: f64,
    /// Grid spacing of the sample points, in meters.
    pub resolution: f64,
}

impl Default for EmrOptions {
    fn default() -> Self {
        EmrOptions {
            threshold: f64::INFINITY,
            resolution: 2.5,
        }
    }
}

/// Result of an EMR-constrained solve.
#[derive(Debug, Clone)]
pub struct EmrResult {
    /// The schedule and its evaluation (same shape as the unconstrained
    /// solver's result).
    pub solve: SolveResult,
    /// Peak radiation of the final schedule over all slots and sample
    /// points — guaranteed `≤ threshold`.
    pub peak_intensity: f64,
    /// Number of greedy choices rejected for violating the threshold.
    pub rejected_choices: usize,
}

/// Greedy HASTE-R maximization under the EMR threshold.
///
/// Identical to the `C = 1` offline algorithm except that, slot by slot, a
/// policy is selectable only if pointing the charger there keeps every
/// sample point at or below `options.threshold` given the orientations
/// already fixed for that slot. Chargers left unassigned stay dark in that
/// slot (holding a previous orientation could violate the budget), so no
/// hold pass is applied.
pub fn solve_offline_emr(
    scenario: &Scenario,
    coverage: &CoverageMap,
    options: &EmrOptions,
) -> EmrResult {
    let instance = HasteRInstance::build(scenario, coverage, DominantScope::PerSlot);
    let (lo, hi) = emr::scenario_bounds(scenario);
    let points: Vec<Vec2> = emr::sample_grid(lo, hi, options.resolution);

    let mut state = instance.new_state();
    let mut choices: Vec<Option<usize>> = vec![None; instance.num_partitions()];
    let mut rejected = 0usize;
    // Radiation already committed at each sample point in the current slot.
    let mut slot_intensity = vec![0.0f64; points.len()];
    let mut current_slot = usize::MAX;

    #[allow(clippy::needless_range_loop)]
    for p in 0..instance.num_partitions() {
        let (charger_id, slot) = instance.charger_slot(p);
        if slot != current_slot {
            current_slot = slot;
            slot_intensity.iter_mut().for_each(|v| *v = 0.0);
        }
        let charger = &scenario.chargers[charger_id.index()];
        let mut best: Option<(usize, f64)> = None;
        for x in 0..instance.num_choices(p) {
            let gain = instance.marginal(&state, p, x);
            if gain <= 0.0 {
                continue;
            }
            if best.is_some_and(|(_, bg)| gain <= bg) {
                continue;
            }
            // Feasibility: adding this orientation keeps every sample point
            // under the threshold.
            let theta = instance.policies(p)[x].orientation;
            let feasible = points.iter().zip(&slot_intensity).all(|(&pt, &base)| {
                base + emr::contribution(&scenario.params, charger, Some(theta), pt)
                    <= options.threshold + 1e-12
            });
            if feasible {
                best = Some((x, gain));
            } else {
                rejected += 1;
            }
        }
        if let Some((x, _)) = best {
            instance.commit(&mut state, p, x);
            choices[p] = Some(x);
            let theta = instance.policies(p)[x].orientation;
            for (pt, base) in points.iter().zip(slot_intensity.iter_mut()) {
                *base += emr::contribution(&scenario.params, charger, Some(theta), *pt);
            }
        }
    }

    let selection = haste_submodular::Selection {
        value: instance.value(&state),
        choices,
    };
    let schedule = instance.materialize(&selection);
    let report = evaluate(scenario, coverage, &schedule, EvalOptions::default());
    let peak_intensity = emr::peak_intensity(scenario, &schedule, &points);
    EmrResult {
        solve: SolveResult {
            schedule,
            relaxed_value: selection.value,
            report,
            metrics: crate::SolverMetrics::default(),
        },
        peak_intensity,
        rejected_choices: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{solve_offline, OfflineConfig};
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Task, TimeGrid};

    /// Two chargers flanking one device that both can reach: unconstrained
    /// greedy stacks both beams on it; a tight EMR budget forbids that.
    fn scenario() -> Scenario {
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        Scenario::new(
            params,
            TimeGrid::minutes(4),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(20.0, 0.0)),
            ],
            vec![Task::new(
                0,
                Vec2::new(10.0, 0.0),
                Angle::ZERO,
                0,
                4,
                10_000.0,
                1.0,
            )],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn infinite_threshold_matches_unconstrained_quality() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let emr = solve_offline_emr(&s, &cov, &EmrOptions::default());
        let plain = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                switch_aware: false,
                ..OfflineConfig::greedy()
            },
        );
        assert!((emr.solve.relaxed_value - plain.relaxed_value).abs() < 1e-9);
        assert_eq!(emr.rejected_choices, 0);
    }

    #[test]
    fn threshold_is_never_exceeded() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        // A single beam peaks at 10000/40² = 6.25 right at the charger;
        // two beams stack to 8.0 at the device. A threshold of 6.5 allows
        // any one beam but forbids stacking both on the device.
        let options = EmrOptions {
            threshold: 6.5,
            resolution: 2.0,
        };
        let result = solve_offline_emr(&s, &cov, &options);
        assert!(
            result.peak_intensity <= options.threshold + 1e-9,
            "peak {} over threshold",
            result.peak_intensity
        );
        assert!(result.rejected_choices > 0, "constraint never bound");
        // The device still gets served by one charger per slot.
        assert!(result.solve.report.total_utility > 0.0);
    }

    #[test]
    fn utility_monotone_in_threshold() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let mut previous = -1.0;
        for threshold in [3.0, 5.0, 9.0, f64::INFINITY] {
            let r = solve_offline_emr(
                &s,
                &cov,
                &EmrOptions {
                    threshold,
                    resolution: 2.0,
                },
            );
            assert!(
                r.solve.relaxed_value >= previous - 1e-9,
                "threshold {threshold}: {} < {previous}",
                r.solve.relaxed_value
            );
            previous = r.solve.relaxed_value;
        }
    }

    #[test]
    fn zero_threshold_means_darkness() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let r = solve_offline_emr(
            &s,
            &cov,
            &EmrOptions {
                threshold: 0.0,
                resolution: 2.0,
            },
        );
        assert_eq!(r.solve.report.total_utility, 0.0);
        assert_eq!(r.peak_intensity, 0.0);
    }
}
