//! The paper's comparison algorithms (Section 7.2).
//!
//! * **GreedyUtility** — every charger independently picks, slot by slot,
//!   the orientation (dominant set) that maximizes the charging utility it
//!   alone delivers, ignoring its neighbors' plans.
//! * **GreedyCover** — every charger independently picks the orientation
//!   covering the largest number of active charging tasks.
//!
//! Both are embarrassingly local and serve as the distributed-friendly
//! baselines HASTE is compared against in every figure.

use haste_model::{evaluate, CoverageMap, EvalOptions, Scenario, UtilityFn};
use haste_submodular::PartitionedObjective;

use crate::instance::{DominantScope, HasteRInstance};
use crate::offline::SolveResult;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Maximize own delivered utility per slot.
    GreedyUtility,
    /// Maximize number of covered active tasks per slot.
    GreedyCover,
}

impl BaselineKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::GreedyUtility => "GreedyUtility",
            BaselineKind::GreedyCover => "GreedyCover",
        }
    }
}

/// Runs a baseline on a scenario and evaluates it under full P1 semantics.
///
/// Both baselines run per charger in isolation (each charger tracks only the
/// energy *it* delivered), exactly as a charger without a control channel
/// would, and are therefore trivially implementable in the distributed
/// online setting as well.
pub fn solve_baseline(
    scenario: &Scenario,
    coverage: &CoverageMap,
    kind: BaselineKind,
) -> SolveResult {
    solve_baseline_with_delay(scenario, coverage, kind, 0)
}

/// Like [`solve_baseline`], but chargers only react to a task
/// `visibility_delay` slots after its release — the baselines' form of the
/// online rescheduling delay `τ`.
pub fn solve_baseline_with_delay(
    scenario: &Scenario,
    coverage: &CoverageMap,
    kind: BaselineKind,
    visibility_delay: usize,
) -> SolveResult {
    let instance = HasteRInstance::build_with(
        scenario,
        coverage,
        crate::InstanceOptions {
            scope: Some(DominantScope::PerSlot),
            visibility_delay: Some(visibility_delay),
            ..crate::InstanceOptions::default()
        },
    );
    let n = scenario.num_chargers();
    let m = scenario.num_tasks();
    let mut selection = haste_submodular::Selection::empty(instance.num_partitions());

    // Per-charger view of the energy it has delivered to each task.
    let mut own_energy = vec![vec![0.0f64; m]; n];
    for p in 0..instance.num_partitions() {
        let (charger, _slot) = instance.charger_slot(p);
        let i = charger.index();
        let policies = instance.policies(p);
        let mut best: Option<(usize, f64)> = None;
        for (x, policy) in policies.iter().enumerate() {
            let score = match kind {
                BaselineKind::GreedyUtility => policy
                    .deliveries
                    .iter()
                    .map(|&(t, delta)| {
                        let task = &scenario.tasks[t];
                        task.weight
                            * scenario.utility.marginal(
                                own_energy[i][t],
                                delta,
                                task.required_energy,
                            )
                    })
                    .sum::<f64>(),
                BaselineKind::GreedyCover => policy.deliveries.len() as f64,
            };
            match best {
                Some((_, b)) if score <= b => {}
                _ => best = Some((x, score)),
            }
        }
        if let Some((x, score)) = best {
            if score > 0.0 {
                selection.choices[p] = Some(x);
                for &(t, delta) in &policies[x].deliveries {
                    own_energy[i][t] += delta;
                }
            }
        }
    }

    let mut schedule = instance.materialize(&selection);
    schedule.hold_orientations();
    let relaxed = haste_model::evaluate_relaxed(scenario, coverage, &schedule);
    let report = evaluate(scenario, coverage, &schedule, EvalOptions::default());
    SolveResult {
        schedule,
        relaxed_value: relaxed.total_utility,
        report,
        metrics: crate::SolverMetrics::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{solve_offline, OfflineConfig};
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Task, TimeGrid};

    /// Two chargers, three tasks. Task 1 is reachable by both chargers;
    /// tasks 0 and 2 by one each. Coordinating chargers can saturate all
    /// three; oblivious ones may double-charge task 1.
    fn scenario() -> Scenario {
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        Scenario::new(
            params,
            TimeGrid::minutes(6),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(30.0, 0.0)),
            ],
            vec![
                Task::new(0, Vec2::new(0.0, 10.0), Angle::ZERO, 0, 6, 480.0, 1.0),
                Task::new(1, Vec2::new(15.0, 0.0), Angle::ZERO, 0, 6, 480.0, 1.0),
                Task::new(2, Vec2::new(30.0, 10.0), Angle::ZERO, 0, 6, 480.0, 1.0),
            ],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn baselines_produce_valid_schedules() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        for kind in [BaselineKind::GreedyUtility, BaselineKind::GreedyCover] {
            let r = solve_baseline(&s, &cov, kind);
            assert!(r.report.total_utility > 0.0, "{} idle", kind.name());
            assert!(r.report.total_utility <= s.total_weight() + 1e-9);
        }
    }

    #[test]
    fn haste_at_least_matches_baselines() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let haste = solve_offline(&s, &cov, &OfflineConfig::with_colors(4));
        for kind in [BaselineKind::GreedyUtility, BaselineKind::GreedyCover] {
            let b = solve_baseline(&s, &cov, kind);
            assert!(
                haste.relaxed_value >= b.relaxed_value - 1e-9,
                "HASTE {} < {} {}",
                haste.relaxed_value,
                kind.name(),
                b.relaxed_value
            );
        }
    }

    #[test]
    fn greedy_cover_ignores_utility_saturation() {
        // After a task saturates, GreedyCover keeps pointing at the bigger
        // cluster while GreedyUtility moves on. Construct one charger with
        // a 2-task cluster (tiny requirements) and a lone task.
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        let s = Scenario::new(
            params,
            TimeGrid::minutes(4),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![
                // Cluster east: saturates in one slot.
                Task::new(0, Vec2::new(10.0, 0.0), Angle::ZERO, 0, 4, 10.0, 1.0),
                Task::new(1, Vec2::new(10.0, 1.0), Angle::ZERO, 0, 4, 10.0, 1.0),
                // Lone task north, big requirement.
                Task::new(2, Vec2::new(0.0, 10.0), Angle::ZERO, 0, 4, 960.0, 1.0),
            ],
            0.0,
            0,
        )
        .unwrap();
        let cov = CoverageMap::build(&s);
        let cover = solve_baseline(&s, &cov, BaselineKind::GreedyCover);
        let utility = solve_baseline(&s, &cov, BaselineKind::GreedyUtility);
        assert!(
            utility.report.total_utility > cover.report.total_utility + 1e-9,
            "utility {} vs cover {}",
            utility.report.total_utility,
            cover.report.total_utility
        );
    }

    #[test]
    fn names() {
        assert_eq!(BaselineKind::GreedyUtility.name(), "GreedyUtility");
        assert_eq!(BaselineKind::GreedyCover.name(), "GreedyCover");
    }
}
