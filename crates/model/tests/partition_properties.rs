//! Property tests for the geographic [`Partition`]: total deterministic
//! cell assignment and multiset preservation under `split`.

use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Partition, Scenario, Task, TimeGrid};
use proptest::prelude::*;

/// Sorts a list of `(x, y)` pairs into a canonical multiset key.
fn multiset(points: impl Iterator<Item = Vec2>) -> Vec<(u64, u64)> {
    let mut key: Vec<(u64, u64)> = points.map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
    key.sort_unstable();
    key
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every in-field point maps to exactly one cell: the index is in
    /// range, and re-evaluating is bit-stable (same input, same cell).
    #[test]
    fn every_in_field_point_maps_to_exactly_one_cell(
        cells_x in 1usize..5,
        cells_y in 1usize..5,
        xs in proptest::collection::vec(0.0f64..200.0, 16),
        ys in proptest::collection::vec(0.0f64..100.0, 16),
    ) {
        let p = Partition::grid(Vec2::ZERO, 200.0, 100.0, cells_x, cells_y, 0.0).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            let cell = p.cell_of(Vec2::new(x, y));
            prop_assert!(cell < p.num_cells());
            prop_assert_eq!(cell, p.cell_of(Vec2::new(x, y)));
        }
    }

    /// Boundary points are assigned deterministically: a point exactly on
    /// an interior boundary belongs to the higher cell, and a nudge just
    /// below lands in the lower cell. Far-edge and out-of-field points
    /// clamp into the edge cells.
    #[test]
    fn boundary_points_are_assigned_deterministically(
        cells_x in 2usize..5,
        cells_y in 2usize..5,
        bx in 1usize..4,
        by in 1usize..4,
        off_axis in 0.0f64..100.0,
    ) {
        let p = Partition::grid(Vec2::ZERO, 200.0, 100.0, cells_x, cells_y, 0.0).unwrap();
        let bx = bx.min(cells_x - 1);
        let by = by.min(cells_y - 1);
        let x_edge = 200.0 * bx as f64 / cells_x as f64;
        let y_edge = 100.0 * by as f64 / cells_y as f64;
        let y_in = off_axis.min(99.0);

        // On the vertical interior boundary: the higher column owns it.
        let on = p.cell_of(Vec2::new(x_edge, y_in));
        prop_assert_eq!(on % cells_x, bx);
        // Just below it: the lower column.
        let below = p.cell_of(Vec2::new(f64_prev(x_edge), y_in));
        prop_assert_eq!(below % cells_x, bx - 1);

        // Same along y.
        let on_y = p.cell_of(Vec2::new(0.0, y_edge));
        prop_assert_eq!(on_y / cells_x, by);
        let below_y = p.cell_of(Vec2::new(0.0, f64_prev(y_edge)));
        prop_assert_eq!(below_y / cells_x, by - 1);

        // Out-of-field points clamp deterministically into edge cells.
        prop_assert_eq!(p.cell_of(Vec2::new(-5.0, -5.0)), 0);
        prop_assert_eq!(
            p.cell_of(Vec2::new(1e6, 1e6)),
            cells_x * cells_y - 1
        );
    }

    /// `split` conserves matter: the charger and task position multisets
    /// of the sub-scenarios equal the original's, and every sub-scenario
    /// is valid (dense renumbered ids) with each element in its own cell.
    #[test]
    fn split_preserves_charger_and_task_multisets(
        charger_seeds in proptest::collection::vec((0usize..4, 0.3f64..0.7, 0.3f64..0.7), 1..6),
        task_seeds in proptest::collection::vec((0usize..4, 0.1f64..0.9, 0.1f64..0.9, 1usize..6), 1..8),
    ) {
        // 2×2 grid over a 200×200 field with halo 20: place chargers in
        // the shrunk interior of their target cell (margin > 30 > halo)
        // and tasks anywhere in their cell — the split precondition holds
        // by construction because devices outside a charger's cell are
        // > 30 m away laterally... not necessarily, a task at a cell edge
        // can be within 20 m of a charger in the neighboring cell only if
        // the charger is within halo of the boundary, which placement
        // rules out. So `split` must succeed.
        let p = Partition::grid(Vec2::ZERO, 200.0, 200.0, 2, 2, 20.0).unwrap();
        let cell_origin = |cell: usize| {
            Vec2::new(100.0 * (cell % 2) as f64, 100.0 * (cell / 2) as f64)
        };
        let chargers: Vec<Charger> = charger_seeds
            .iter()
            .enumerate()
            .map(|(i, &(cell, fx, fy))| {
                let o = cell_origin(cell);
                Charger::new(i as u32, Vec2::new(o.x + 100.0 * fx, o.y + 100.0 * fy))
            })
            .collect();
        let tasks: Vec<Task> = task_seeds
            .iter()
            .enumerate()
            .map(|(j, &(cell, fx, fy, dur))| {
                let o = cell_origin(cell);
                Task::new(
                    j as u32,
                    Vec2::new(o.x + 100.0 * fx, o.y + 100.0 * fy),
                    Angle::from_degrees(45.0 * j as f64),
                    j % 3,
                    j % 3 + dur,
                    500.0 + j as f64,
                    1.0,
                )
            })
            .collect();
        let scenario = Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(16),
            chargers,
            tasks,
            1.0 / 12.0,
            1,
        )
        .unwrap();
        p.validate_chargers(&scenario).unwrap();

        let cells = p.split(&scenario).unwrap();
        prop_assert_eq!(cells.len(), 4);
        for (cell_idx, cell) in cells.iter().enumerate() {
            cell.validate().unwrap();
            for c in &cell.chargers {
                prop_assert_eq!(p.cell_of(c.pos), cell_idx);
            }
            for t in &cell.tasks {
                prop_assert_eq!(p.cell_of(t.device_pos), cell_idx);
            }
        }
        prop_assert_eq!(
            multiset(cells.iter().flat_map(|c| c.chargers.iter().map(|c| c.pos))),
            multiset(scenario.chargers.iter().map(|c| c.pos))
        );
        prop_assert_eq!(
            multiset(cells.iter().flat_map(|c| c.tasks.iter().map(|t| t.device_pos))),
            multiset(scenario.tasks.iter().map(|t| t.device_pos))
        );
        // Beyond positions: the full task tuples survive (windows, energy).
        let mut original: Vec<(u64, usize, usize)> = scenario
            .tasks
            .iter()
            .map(|t| (t.required_energy.to_bits(), t.release_slot, t.end_slot))
            .collect();
        let mut split_up: Vec<(u64, usize, usize)> = cells
            .iter()
            .flat_map(|c| c.tasks.iter())
            .map(|t| (t.required_energy.to_bits(), t.release_slot, t.end_slot))
            .collect();
        original.sort_unstable();
        split_up.sort_unstable();
        prop_assert_eq!(original, split_up);
    }

    /// Elastic round-trip: splitting any cell and merging the two children
    /// back reproduces the original partition **exactly** (bitwise rects,
    /// same base grid), in either argument order.
    #[test]
    fn merge_inverts_split_cell(
        cells_x in 1usize..4,
        cells_y in 1usize..4,
        pick in 0usize..16,
    ) {
        // Halo 10 over 800×600 keeps every child of a single split wide
        // enough (cell extents ≥ 200/4 → children ≥ 25 > 2 × 10).
        let p = Partition::grid(Vec2::ZERO, 800.0, 600.0, cells_x, cells_y, 10.0).unwrap();
        let cell = pick % p.num_cells();
        let split = p.split_cell(cell).unwrap();
        prop_assert_eq!(split.num_cells(), p.num_cells() + 1);
        prop_assert_eq!(split.merge_cells(cell, cell + 1).unwrap(), p.clone());
        prop_assert_eq!(split.merge_cells(cell + 1, cell).unwrap(), p);
    }

    /// Every successful `split_cell` preserves the partition invariants:
    /// each point still maps to exactly one cell (membership counted
    /// directly against the rect list, not just via `cell_of`), and every
    /// rect with an interior boundary stays wider than two halo widths on
    /// that axis — so the halo precondition remains satisfiable.
    #[test]
    fn split_cell_preserves_tiling_and_halo_invariants(
        cells_x in 1usize..4,
        cells_y in 1usize..4,
        pick in 0usize..16,
        xs in proptest::collection::vec(0.0f64..800.0, 16),
        ys in proptest::collection::vec(0.0f64..600.0, 16),
    ) {
        let halo = 10.0;
        let p = Partition::grid(Vec2::ZERO, 800.0, 600.0, cells_x, cells_y, halo).unwrap();
        let split = p.split_cell(pick % p.num_cells()).unwrap();
        for r in split.cells() {
            if r.x0 > 0.0 || r.x1 < 800.0 {
                prop_assert!(r.width() > 2.0 * halo);
            }
            if r.y0 > 0.0 || r.y1 < 600.0 {
                prop_assert!(r.height() > 2.0 * halo);
            }
        }
        for (&x, &y) in xs.iter().zip(&ys) {
            let owners = split
                .cells()
                .iter()
                .filter(|r| {
                    let in_x = x >= r.x0 && (x < r.x1 || r.x1 == 800.0);
                    let in_y = y >= r.y0 && (y < r.y1 || r.y1 == 600.0);
                    in_x && in_y
                })
                .count();
            prop_assert_eq!(owners, 1);
            let cell = split.cell_of(Vec2::new(x, y));
            let r = split.cell_rect(cell);
            prop_assert!(x >= r.x0 && x <= r.x1 && y >= r.y0 && y <= r.y1);
        }
    }
}

/// The largest float strictly below `x` (for boundary-nudge tests).
fn f64_prev(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}
