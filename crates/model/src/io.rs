//! Plain-text scenario serialization.
//!
//! All model types derive `serde`, but this workspace deliberately ships no
//! serde *format* crate; for interoperability (hand-written instances,
//! diffable fixtures, piping between tools) scenarios also round-trip
//! through a simple line-oriented text format:
//!
//! ```text
//! # haste scenario v1
//! params <alpha> <beta> <radius> <A_s> <A_o>
//! grid <slot_seconds> <num_slots>
//! delays <rho> <tau>
//! utility linear | concave <exponent>
//! charger <id> <x> <y>
//! task <id> <x> <y> <facing_rad> <release_slot> <end_slot> <energy> <weight>
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Fields are
//! whitespace-separated. The parser validates the result via
//! [`Scenario::validate`].

use std::fmt::Write as _;

use haste_geometry::{Angle, Vec2};

use crate::{
    Charger, ChargerId, ChargingParams, ModelError, Scenario, Schedule, Task, TimeGrid,
    UtilityModel,
};

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line had an unknown directive or bad field count/values.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A mandatory section (`params`, `grid`, `delays`) was missing.
    MissingSection(&'static str),
    /// The assembled scenario failed validation.
    Invalid(ModelError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::MissingSection(s) => write!(f, "missing `{s}` line"),
            ParseError::Invalid(e) => write!(f, "invalid scenario: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Renders a scenario in the text format.
pub fn write_scenario(scenario: &Scenario) -> String {
    let mut out = String::new();
    let p = &scenario.params;
    let _ = writeln!(out, "# haste scenario v1");
    let _ = writeln!(
        out,
        "params {} {} {} {} {}",
        p.alpha, p.beta, p.radius, p.charging_angle, p.receiving_angle
    );
    let _ = writeln!(
        out,
        "grid {} {}",
        scenario.grid.slot_seconds, scenario.grid.num_slots
    );
    let _ = writeln!(out, "delays {} {}", scenario.rho, scenario.tau);
    match scenario.utility {
        UtilityModel::LinearBounded => {
            let _ = writeln!(out, "utility linear");
        }
        UtilityModel::ConcavePower(e) => {
            let _ = writeln!(out, "utility concave {e}");
        }
    }
    for c in &scenario.chargers {
        let _ = writeln!(out, "charger {} {} {}", c.id.0, c.pos.x, c.pos.y);
    }
    for t in &scenario.tasks {
        let _ = writeln!(out, "{}", task_line(t));
    }
    out
}

/// Renders one task as a `task ...` directive line (no trailing newline) —
/// the exact syntax [`read_scenario`] accepts. Exposed so other text
/// formats (e.g. daemon snapshots) can embed tasks verbatim.
pub fn task_line(t: &Task) -> String {
    format!(
        "task {} {} {} {} {} {} {} {}",
        t.id.0,
        t.device_pos.x,
        t.device_pos.y,
        t.device_facing.radians(),
        t.release_slot,
        t.end_slot,
        t.required_energy,
        t.weight
    )
}

/// Parses the fields of a `task` directive (everything after the `task`
/// keyword). The inverse of [`task_line`]; does not validate the task
/// against any grid.
pub fn parse_task_fields(fields: &[&str]) -> Result<Task, String> {
    let v = parse_f64s(fields, 8)?;
    Ok(Task::new(
        v[0] as u32,
        Vec2::new(v[1], v[2]),
        Angle::from_radians(v[3]),
        v[4] as usize,
        v[5] as usize,
        v[6],
        v[7],
    ))
}

/// Parses a scenario from the text format.
pub fn read_scenario(text: &str) -> Result<Scenario, ParseError> {
    let mut params: Option<ChargingParams> = None;
    let mut grid: Option<TimeGrid> = None;
    let mut delays: Option<(f64, usize)> = None;
    let mut utility = UtilityModel::LinearBounded;
    let mut chargers: Vec<Charger> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ParseError::BadLine {
            line: line_no,
            reason: reason.to_string(),
        };
        let mut fields = line.split_whitespace();
        let directive = fields.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = fields.collect();
        match directive {
            "params" => {
                let v = parse_f64s(&rest, 5).map_err(|e| bad(&e))?;
                params = Some(ChargingParams {
                    alpha: v[0],
                    beta: v[1],
                    radius: v[2],
                    charging_angle: v[3],
                    receiving_angle: v[4],
                    ..ChargingParams::simulation_default()
                });
            }
            "grid" => {
                let v = parse_f64s(&rest, 2).map_err(|e| bad(&e))?;
                if v[1] < 1.0 || v[1].fract() != 0.0 {
                    return Err(bad("num_slots must be a positive integer"));
                }
                grid = Some(TimeGrid::new(v[0], v[1] as usize));
            }
            "delays" => {
                let v = parse_f64s(&rest, 2).map_err(|e| bad(&e))?;
                if v[1] < 0.0 || v[1].fract() != 0.0 {
                    return Err(bad("tau must be a non-negative integer"));
                }
                delays = Some((v[0], v[1] as usize));
            }
            "utility" => match rest.as_slice() {
                ["linear"] => utility = UtilityModel::LinearBounded,
                ["concave", e] => {
                    let e: f64 = e.parse().map_err(|_| bad("bad exponent"))?;
                    utility = UtilityModel::ConcavePower(e);
                }
                _ => return Err(bad("expected `linear` or `concave <exponent>`")),
            },
            "charger" => {
                let v = parse_f64s(&rest, 3).map_err(|e| bad(&e))?;
                chargers.push(Charger::new(v[0] as u32, Vec2::new(v[1], v[2])));
            }
            "task" => {
                tasks.push(parse_task_fields(&rest).map_err(|e| bad(&e))?);
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
    }

    let params = params.ok_or(ParseError::MissingSection("params"))?;
    let grid = grid.ok_or(ParseError::MissingSection("grid"))?;
    let (rho, tau) = delays.ok_or(ParseError::MissingSection("delays"))?;
    let mut scenario =
        Scenario::new(params, grid, chargers, tasks, rho, tau).map_err(ParseError::Invalid)?;
    scenario.utility = utility;
    Ok(scenario)
}

/// Renders a schedule in the text format:
///
/// ```text
/// # haste schedule v1
/// schedule <num_chargers> <num_slots>
/// row <charger_id> <orientation_rad | -> ...
/// ```
///
/// One `row` line per charger with exactly `num_slots` entries; `-` marks
/// an unassigned slot. Orientations use shortest-roundtrip float
/// formatting, so [`read_schedule`] reconstructs the schedule bit-exactly.
pub fn write_schedule(schedule: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# haste schedule v1");
    let _ = writeln!(
        out,
        "schedule {} {}",
        schedule.num_chargers(),
        schedule.num_slots()
    );
    for i in 0..schedule.num_chargers() {
        let _ = write!(out, "row {i}");
        for o in schedule.row(ChargerId(i as u32)) {
            match o {
                Some(theta) => {
                    let _ = write!(out, " {}", theta.radians());
                }
                None => out.push_str(" -"),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a schedule from the text format. Every charger row must be
/// present exactly once with exactly `num_slots` entries.
pub fn read_schedule(text: &str) -> Result<Schedule, ParseError> {
    let mut dims: Option<(usize, usize)> = None;
    let mut schedule: Option<Schedule> = None;
    let mut seen: Vec<bool> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ParseError::BadLine {
            line: line_no,
            reason: reason.to_string(),
        };
        let mut fields = line.split_whitespace();
        let directive = fields.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = fields.collect();
        match directive {
            "schedule" => {
                if dims.is_some() {
                    return Err(bad("duplicate `schedule` line"));
                }
                let v = parse_f64s(&rest, 2).map_err(|e| bad(&e))?;
                if v[0] < 0.0 || v[0].fract() != 0.0 || v[1] < 0.0 || v[1].fract() != 0.0 {
                    return Err(bad("dimensions must be non-negative integers"));
                }
                let (n, k) = (v[0] as usize, v[1] as usize);
                dims = Some((n, k));
                schedule = Some(Schedule::empty(n, k));
                seen = vec![false; n];
            }
            "row" => {
                let (n, k) = dims.ok_or_else(|| bad("`row` before `schedule` line"))?;
                let schedule = schedule.as_mut().expect("dims implies schedule");
                if rest.len() != k + 1 {
                    return Err(bad(&format!(
                        "expected charger id + {k} entries, got {} fields",
                        rest.len()
                    )));
                }
                let id: usize = rest[0]
                    .parse()
                    .map_err(|_| bad("bad charger id in `row`"))?;
                if id >= n {
                    return Err(bad(&format!("charger id {id} out of range (n = {n})")));
                }
                if seen[id] {
                    return Err(bad(&format!("duplicate row for charger {id}")));
                }
                seen[id] = true;
                for (slot, field) in rest[1..].iter().enumerate() {
                    if *field == "-" {
                        continue;
                    }
                    let theta: f64 = field
                        .parse()
                        .map_err(|_| bad(&format!("`{field}` is not an orientation")))?;
                    if !theta.is_finite() {
                        return Err(bad("orientation must be finite"));
                    }
                    schedule.set(ChargerId(id as u32), slot, Some(Angle::from_radians(theta)));
                }
            }
            other => return Err(bad(&format!("unknown directive `{other}`"))),
        }
    }

    let (n, _) = dims.ok_or(ParseError::MissingSection("schedule"))?;
    if let Some(missing) = (0..n).find(|&i| !seen[i]) {
        return Err(ParseError::BadLine {
            line: 0,
            reason: format!("missing row for charger {missing}"),
        });
    }
    Ok(schedule.expect("dims implies schedule"))
}

fn parse_f64s(fields: &[&str], expected: usize) -> Result<Vec<f64>, String> {
    if fields.len() != expected {
        return Err(format!("expected {expected} fields, got {}", fields.len()));
    }
    fields
        .iter()
        .map(|f| {
            f.parse::<f64>()
                .map_err(|_| format!("`{f}` is not a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(6),
            vec![
                Charger::new(0, Vec2::new(1.0, 2.0)),
                Charger::new(1, Vec2::new(3.5, 4.25)),
            ],
            vec![
                Task::new(
                    0,
                    Vec2::new(5.0, 5.0),
                    Angle::from_degrees(90.0),
                    0,
                    6,
                    1234.5,
                    0.5,
                ),
                Task::new(
                    1,
                    Vec2::new(7.0, 1.0),
                    Angle::from_degrees(200.0),
                    2,
                    5,
                    999.0,
                    0.5,
                ),
            ],
            1.0 / 12.0,
            1,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample();
        let text = write_scenario(&original);
        let parsed = read_scenario(&text).unwrap();
        assert_eq!(parsed.chargers, original.chargers);
        assert_eq!(parsed.tasks, original.tasks);
        assert_eq!(parsed.grid, original.grid);
        assert_eq!(parsed.rho, original.rho);
        assert_eq!(parsed.tau, original.tau);
        assert_eq!(parsed.params.alpha, original.params.alpha);
        assert_eq!(parsed.utility, original.utility);
    }

    #[test]
    fn roundtrip_concave_utility() {
        let mut s = sample();
        s.utility = UtilityModel::ConcavePower(0.5);
        let parsed = read_scenario(&write_scenario(&s)).unwrap();
        assert_eq!(parsed.utility, UtilityModel::ConcavePower(0.5));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\nparams 1 0 10 1 1\n\ngrid 60 4\ndelays 0 0\n";
        let s = read_scenario(text).unwrap();
        assert_eq!(s.grid.num_slots, 4);
        assert!(s.chargers.is_empty());
    }

    #[test]
    fn missing_sections_detected() {
        assert!(matches!(
            read_scenario("grid 60 4\ndelays 0 0"),
            Err(ParseError::MissingSection("params"))
        ));
        assert!(matches!(
            read_scenario("params 1 0 10 1 1\ndelays 0 0"),
            Err(ParseError::MissingSection("grid"))
        ));
        assert!(matches!(
            read_scenario("params 1 0 10 1 1\ngrid 60 4"),
            Err(ParseError::MissingSection("delays"))
        ));
    }

    #[test]
    fn bad_lines_reported_with_position() {
        let text = "params 1 0 10 1 1\ngrid 60 4\ndelays 0 0\nbanana 1 2";
        match read_scenario(text) {
            Err(ParseError::BadLine { line, reason }) => {
                assert_eq!(line, 4);
                assert!(reason.contains("banana"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
        let text = "params 1 0 x 1 1\ngrid 60 4\ndelays 0 0";
        assert!(matches!(
            read_scenario(text),
            Err(ParseError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn field_count_enforced() {
        let text = "params 1 0 10 1\ngrid 60 4\ndelays 0 0";
        assert!(matches!(
            read_scenario(text),
            Err(ParseError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn validation_failures_propagate() {
        // Task window outside the grid.
        let text = "params 10000 40 20 1 1\ngrid 60 4\ndelays 0 0\n\
                    task 0 1 1 0 0 9 100 1";
        assert!(matches!(read_scenario(text), Err(ParseError::Invalid(_))));
    }

    mod roundtrip_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The text format round-trips arbitrary valid scenarios
            /// exactly (Rust's shortest-float formatting is lossless).
            #[test]
            fn arbitrary_scenarios_roundtrip(
                n in 1usize..4,
                m in 0usize..6,
                coords in proptest::collection::vec(-100.0f64..100.0, 20),
                energies in proptest::collection::vec(1.0f64..1e6, 6),
                rho in 0.0f64..1.0,
                tau in 0usize..4,
            ) {
                let chargers = (0..n)
                    .map(|i| Charger::new(i as u32, Vec2::new(coords[2 * i], coords[2 * i + 1])))
                    .collect();
                let tasks = (0..m)
                    .map(|j| {
                        Task::new(
                            j as u32,
                            Vec2::new(coords[8 + 2 * j], coords[9 + 2 * j]),
                            Angle::from_radians(coords[j].abs()),
                            j,
                            j + 2,
                            energies[j],
                            1.0,
                        )
                    })
                    .collect();
                let scenario = Scenario::new(
                    ChargingParams::simulation_default(),
                    TimeGrid::minutes(8),
                    chargers,
                    tasks,
                    rho,
                    tau,
                )
                .unwrap();
                let parsed = read_scenario(&write_scenario(&scenario)).unwrap();
                prop_assert_eq!(&parsed.chargers, &scenario.chargers);
                prop_assert_eq!(&parsed.tasks, &scenario.tasks);
                prop_assert_eq!(parsed.rho, scenario.rho);
                prop_assert_eq!(parsed.tau, scenario.tau);
            }
        }
    }

    #[test]
    fn schedule_roundtrip_exact() {
        let mut s = Schedule::empty(3, 5);
        s.set(ChargerId(0), 0, Some(Angle::from_degrees(12.5)));
        s.set(
            ChargerId(0),
            3,
            Some(Angle::from_radians(std::f64::consts::PI)),
        );
        s.set(ChargerId(2), 4, Some(Angle::from_radians(1e-9)));
        let parsed = read_schedule(&write_schedule(&s)).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn schedule_roundtrip_empty() {
        let s = Schedule::empty(0, 0);
        assert_eq!(read_schedule(&write_schedule(&s)).unwrap(), s);
        let s = Schedule::empty(2, 0);
        assert_eq!(read_schedule(&write_schedule(&s)).unwrap(), s);
    }

    #[test]
    fn schedule_errors_reported() {
        // Truncated: header only, rows missing.
        match read_schedule("schedule 2 3\nrow 0 - - -") {
            Err(ParseError::BadLine { reason, .. }) => {
                assert!(reason.contains("missing row for charger 1"))
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
        // Bad field count in a row.
        assert!(matches!(
            read_schedule("schedule 1 3\nrow 0 - -"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        // Out-of-range charger id.
        match read_schedule("schedule 1 1\nrow 5 -") {
            Err(ParseError::BadLine { line: 2, reason }) => {
                assert!(reason.contains("out of range"))
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
        // Row before header, duplicate rows, missing header entirely.
        assert!(matches!(
            read_schedule("row 0 -"),
            Err(ParseError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            read_schedule("schedule 1 1\nrow 0 -\nrow 0 -"),
            Err(ParseError::BadLine { line: 3, .. })
        ));
        assert!(matches!(
            read_schedule("# nothing\n"),
            Err(ParseError::MissingSection("schedule"))
        ));
        // Non-numeric orientation and non-finite orientation.
        assert!(matches!(
            read_schedule("schedule 1 1\nrow 0 north"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            read_schedule("schedule 1 1\nrow 0 inf"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn scenario_truncated_task_line_rejected() {
        // Task line cut mid-way (7 of 8 fields).
        let text = "params 1 0 10 1 1\ngrid 60 4\ndelays 0 0\n\
                    task 0 1 1 0 0 3 100";
        assert!(matches!(
            read_scenario(text),
            Err(ParseError::BadLine { line: 4, .. })
        ));
    }

    #[test]
    fn scenario_out_of_range_slots_rejected() {
        // release >= end.
        let text = "params 10000 40 20 1 1\ngrid 60 4\ndelays 0 0\n\
                    task 0 1 1 0 3 3 100 1";
        assert!(matches!(read_scenario(text), Err(ParseError::Invalid(_))));
        // end past the grid.
        let text = "params 10000 40 20 1 1\ngrid 60 4\ndelays 0 0\n\
                    task 0 1 1 0 0 5 100 1";
        assert!(matches!(read_scenario(text), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn task_line_matches_scenario_syntax() {
        let t = Task::new(
            7,
            Vec2::new(-3.25, 8.5),
            Angle::from_degrees(123.0),
            1,
            4,
            555.5,
            2.0,
        );
        let line = task_line(&t);
        let fields: Vec<&str> = line.split_whitespace().skip(1).collect();
        let parsed = parse_task_fields(&fields).unwrap();
        assert_eq!(parsed, t);
    }

    mod schedule_roundtrip_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary schedules (random assigned/unassigned patterns,
            /// random orientations) round-trip bit-exactly through the
            /// text format.
            #[test]
            fn arbitrary_schedules_roundtrip(
                n in 1usize..5,
                k in 1usize..7,
                // Negative cells mean "unassigned" (the vendored proptest
                // stub has no Option strategy).
                cells in proptest::collection::vec(
                    -2.0f64..std::f64::consts::TAU,
                    35,
                ),
            ) {
                let mut s = Schedule::empty(n, k);
                for i in 0..n {
                    for slot in 0..k {
                        let theta = cells[i * 7 + slot];
                        if theta >= 0.0 {
                            s.set(ChargerId(i as u32), slot, Some(Angle::from_radians(theta)));
                        }
                    }
                }
                let parsed = read_schedule(&write_schedule(&s)).unwrap();
                prop_assert_eq!(parsed, s);
            }
        }
    }

    #[test]
    fn error_display() {
        let e = ParseError::BadLine {
            line: 3,
            reason: "nope".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseError::MissingSection("grid")
            .to_string()
            .contains("grid"));
    }
}
