//! Geographic **partitioning** of a scenario into independent cells.
//!
//! The paper's distributed algorithm (Alg. 3) is local by construction:
//! negotiation only ever happens between chargers that share a chargeable
//! task. A field cut into cells therefore decomposes into fully
//! independent scheduling problems **provided no task's reachable chargers
//! span two cells**. [`Partition`] makes that precondition checkable and
//! the decomposition mechanical:
//!
//! * [`Partition::cell_of`] deterministically maps any point — boundary
//!   points and out-of-field points included — to exactly one cell,
//! * [`Partition::validate_chargers`] checks the *charger-reach halo*: a
//!   charger closer than the halo width `D` (the charging radius) to an
//!   interior cell boundary could reach a device in the adjacent cell, so
//!   its placement is rejected. A scenario that passes is safe for **any**
//!   future task position,
//! * [`Partition::split`] cuts a scenario into per-cell sub-scenarios
//!   (ids renumbered, original order preserved), rejecting any task whose
//!   chargeable chargers do not all lie in the task's own cell.
//!
//! The preserved relative order of chargers and tasks inside each cell is
//! what keeps the per-cell sub-problems bit-compatible with the original:
//! every scheduler in this workspace iterates chargers and tasks in id
//! order, and renumbering that preserves relative order preserves every
//! such iteration (and every floating-point summation order) within a
//! cell.

use haste_geometry::Vec2;

use crate::{power, Scenario};

/// A uniform grid partition of the deployment field with a charger-reach
/// halo. Cells are indexed row-major: `cell = cy * cells_x + cx`.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    origin: Vec2,
    field_w: f64,
    field_h: f64,
    cells_x: usize,
    cells_y: usize,
    halo: f64,
}

/// Why a partition could not be built or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// The grid geometry itself is unusable.
    InvalidGeometry(&'static str),
    /// A charger sits within the halo of an interior cell boundary: a task
    /// just across that boundary could reach it, so per-cell independence
    /// would not hold for arbitrary submissions.
    ChargerInHalo {
        /// Index of the offending charger.
        charger: usize,
        /// The cell the charger maps to.
        cell: usize,
        /// Distance to the nearest interior boundary of its cell, meters.
        margin: f64,
    },
    /// A task's chargeable chargers are not all in the task's own cell —
    /// the independence precondition Algorithm 3 needs is violated.
    TaskSpansCells {
        /// Index of the offending task.
        task: usize,
        /// The cell the task's device maps to.
        task_cell: usize,
        /// A chargeable charger outside that cell.
        charger: usize,
        /// The cell that charger maps to.
        charger_cell: usize,
    },
    /// A sub-scenario failed model validation after the split.
    Invalid(crate::ModelError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidGeometry(reason) => {
                write!(f, "invalid partition geometry: {reason}")
            }
            PartitionError::ChargerInHalo {
                charger,
                cell,
                margin,
            } => write!(
                f,
                "charger {charger} in cell {cell} is {margin} m from an interior cell \
                 boundary (inside the reach halo): a device across the boundary could \
                 reach it"
            ),
            PartitionError::TaskSpansCells {
                task,
                task_cell,
                charger,
                charger_cell,
            } => write!(
                f,
                "task {task} (cell {task_cell}) is chargeable by charger {charger} \
                 (cell {charger_cell}): reachable chargers span cells"
            ),
            PartitionError::Invalid(e) => write!(f, "split produced an invalid scenario: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Where every charger and task of a scenario lands under a partition:
/// per-cell membership plus the renumbered local index of each. Relative
/// order within a cell is the original order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAssignment {
    /// `charger_cell[i]` — the cell charger `i` maps to.
    pub charger_cell: Vec<usize>,
    /// `charger_local[i]` — charger `i`'s id inside its cell's sub-scenario.
    pub charger_local: Vec<usize>,
    /// `task_cell[j]` — the cell task `j`'s device maps to.
    pub task_cell: Vec<usize>,
    /// `task_local[j]` — task `j`'s id inside its cell's sub-scenario.
    pub task_local: Vec<usize>,
}

impl Partition {
    /// Creates a uniform `cells_x × cells_y` grid over the axis-aligned
    /// field rectangle at `origin` with extent `field_w × field_h`, using
    /// halo width `halo` (normally the charging radius `D`).
    pub fn grid(
        origin: Vec2,
        field_w: f64,
        field_h: f64,
        cells_x: usize,
        cells_y: usize,
        halo: f64,
    ) -> Result<Partition, PartitionError> {
        if !(origin.x.is_finite() && origin.y.is_finite()) {
            return Err(PartitionError::InvalidGeometry("origin must be finite"));
        }
        if !(field_w.is_finite() && field_w > 0.0 && field_h.is_finite() && field_h > 0.0) {
            return Err(PartitionError::InvalidGeometry(
                "field extent must be finite and positive",
            ));
        }
        if cells_x == 0 || cells_y == 0 {
            return Err(PartitionError::InvalidGeometry(
                "the grid needs at least one cell per axis",
            ));
        }
        if !(halo.is_finite() && halo >= 0.0) {
            return Err(PartitionError::InvalidGeometry(
                "halo must be finite and non-negative",
            ));
        }
        // A cell narrower than two halos has no interior a charger could
        // legally occupy (both boundaries of an interior cell are within
        // reach), which would make `validate_chargers` unsatisfiable.
        if cells_x > 1 && field_w / cells_x as f64 <= 2.0 * halo {
            return Err(PartitionError::InvalidGeometry(
                "cells are narrower than two halo widths along x",
            ));
        }
        if cells_y > 1 && field_h / cells_y as f64 <= 2.0 * halo {
            return Err(PartitionError::InvalidGeometry(
                "cells are shorter than two halo widths along y",
            ));
        }
        Ok(Partition {
            origin,
            field_w,
            field_h,
            cells_x,
            cells_y,
            halo,
        })
    }

    /// Cells along x.
    #[inline]
    pub fn cells_x(&self) -> usize {
        self.cells_x
    }

    /// Cells along y.
    #[inline]
    pub fn cells_y(&self) -> usize {
        self.cells_y
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells_x * self.cells_y
    }

    /// The halo width (charger reach) this partition was built with.
    #[inline]
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The field origin.
    #[inline]
    pub fn origin(&self) -> Vec2 {
        self.origin
    }

    /// The field extent `(width, height)`.
    #[inline]
    pub fn field(&self) -> (f64, f64) {
        (self.field_w, self.field_h)
    }

    /// Maps a coordinate to a cell index along one axis: floor division by
    /// the cell extent, clamped into range. A point exactly on an interior
    /// boundary belongs to the *higher* cell (floor of the exact ratio); a
    /// point on or beyond the far field edge clamps to the last cell, and
    /// one below the origin clamps to cell 0 — so every finite coordinate
    /// maps to exactly one cell, deterministically.
    #[inline]
    fn axis_cell(coord: f64, origin: f64, extent: f64, cells: usize) -> usize {
        let rel = (coord - origin) / (extent / cells as f64);
        if rel.is_nan() || rel <= 0.0 {
            return 0;
        }
        (rel.floor() as usize).min(cells - 1)
    }

    /// Deterministically maps any point to exactly one cell (row-major
    /// index). See [`axis_cell`](Partition::axis_cell) for the boundary
    /// convention.
    #[inline]
    pub fn cell_of(&self, p: Vec2) -> usize {
        let cx = Self::axis_cell(p.x, self.origin.x, self.field_w, self.cells_x);
        let cy = Self::axis_cell(p.y, self.origin.y, self.field_h, self.cells_y);
        cy * self.cells_x + cx
    }

    /// Distance from a point to the nearest *interior* boundary of its own
    /// cell (`f64::INFINITY` for a 1×1 grid). Outer field edges do not
    /// count: a point beyond them still maps into the edge cell, so reach
    /// across them never leaves the cell.
    pub fn interior_margin(&self, p: Vec2) -> f64 {
        let cell_w = self.field_w / self.cells_x as f64;
        let cell_h = self.field_h / self.cells_y as f64;
        let cx = Self::axis_cell(p.x, self.origin.x, self.field_w, self.cells_x);
        let cy = Self::axis_cell(p.y, self.origin.y, self.field_h, self.cells_y);
        let mut margin = f64::INFINITY;
        if cx > 0 {
            margin = margin.min(p.x - (self.origin.x + cx as f64 * cell_w));
        }
        if cx + 1 < self.cells_x {
            margin = margin.min((self.origin.x + (cx + 1) as f64 * cell_w) - p.x);
        }
        if cy > 0 {
            margin = margin.min(p.y - (self.origin.y + cy as f64 * cell_h));
        }
        if cy + 1 < self.cells_y {
            margin = margin.min((self.origin.y + (cy + 1) as f64 * cell_h) - p.y);
        }
        margin
    }

    /// Checks the charger-reach halo: every charger must be at least the
    /// halo width away from every interior boundary of its cell. A
    /// scenario that passes stays per-cell independent for **any** task
    /// position (a device a charger can reach is within `halo` of it, so
    /// it cannot lie across an interior boundary). The epsilon matches the
    /// range cutoff of [`power::chargeable`].
    pub fn validate_chargers(&self, scenario: &Scenario) -> Result<(), PartitionError> {
        for (i, charger) in scenario.chargers.iter().enumerate() {
            let margin = self.interior_margin(charger.pos);
            if margin <= self.halo + 1e-12 {
                return Err(PartitionError::ChargerInHalo {
                    charger: i,
                    cell: self.cell_of(charger.pos),
                    margin,
                });
            }
        }
        Ok(())
    }

    /// Computes where every charger and task lands, with renumbered local
    /// indices (relative order within a cell preserved). Rejects a task
    /// whose chargeable chargers do not all lie in the task's own cell —
    /// the independence precondition.
    pub fn assign(&self, scenario: &Scenario) -> Result<CellAssignment, PartitionError> {
        let mut charger_count = vec![0usize; self.num_cells()];
        let mut charger_cell = Vec::with_capacity(scenario.num_chargers());
        let mut charger_local = Vec::with_capacity(scenario.num_chargers());
        for charger in &scenario.chargers {
            let cell = self.cell_of(charger.pos);
            charger_cell.push(cell);
            charger_local.push(charger_count[cell]);
            charger_count[cell] += 1;
        }
        let mut task_count = vec![0usize; self.num_cells()];
        let mut task_cell = Vec::with_capacity(scenario.num_tasks());
        let mut task_local = Vec::with_capacity(scenario.num_tasks());
        for (j, task) in scenario.tasks.iter().enumerate() {
            let cell = self.cell_of(task.device_pos);
            for (i, charger) in scenario.chargers.iter().enumerate() {
                if charger_cell[i] != cell && power::chargeable(&scenario.params, charger, task) {
                    return Err(PartitionError::TaskSpansCells {
                        task: j,
                        task_cell: cell,
                        charger: i,
                        charger_cell: charger_cell[i],
                    });
                }
            }
            task_cell.push(cell);
            task_local.push(task_count[cell]);
            task_count[cell] += 1;
        }
        Ok(CellAssignment {
            charger_cell,
            charger_local,
            task_cell,
            task_local,
        })
    }

    /// Splits a scenario into one sub-scenario per cell. Chargers and
    /// tasks are renumbered to their local indices (original order
    /// preserved within each cell); params, grid, delays and the utility
    /// model are shared verbatim. Fails if any task's chargeable chargers
    /// span cells (see [`assign`](Partition::assign)).
    pub fn split(&self, scenario: &Scenario) -> Result<Vec<Scenario>, PartitionError> {
        let assignment = self.assign(scenario)?;
        let mut cells: Vec<Scenario> = (0..self.num_cells())
            .map(|_| Scenario {
                params: scenario.params,
                grid: scenario.grid,
                chargers: Vec::new(),
                tasks: Vec::new(),
                rho: scenario.rho,
                tau: scenario.tau,
                utility: scenario.utility,
            })
            .collect();
        for (i, charger) in scenario.chargers.iter().enumerate() {
            let mut local = *charger;
            local.id = crate::ChargerId(assignment.charger_local[i] as u32);
            cells[assignment.charger_cell[i]].chargers.push(local);
        }
        for (j, task) in scenario.tasks.iter().enumerate() {
            let mut local = *task;
            local.id = crate::TaskId(assignment.task_local[j] as u32);
            cells[assignment.task_cell[j]].tasks.push(local);
        }
        for cell in &cells {
            cell.validate().map_err(PartitionError::Invalid)?;
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Charger, ChargingParams, Task, TimeGrid};
    use haste_geometry::Angle;

    fn two_cell_scenario() -> (Partition, Scenario) {
        // 200 × 100 field, two 100-wide cells, halo 20 (the default D).
        let partition = Partition::grid(Vec2::ZERO, 200.0, 100.0, 2, 1, 20.0).unwrap();
        let scenario = Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(8),
            vec![
                Charger::new(0, Vec2::new(40.0, 50.0)),
                Charger::new(1, Vec2::new(160.0, 50.0)),
                Charger::new(2, Vec2::new(60.0, 30.0)),
            ],
            vec![
                Task::new(0, Vec2::new(50.0, 50.0), Angle::ZERO, 0, 8, 900.0, 1.0),
                Task::new(1, Vec2::new(150.0, 50.0), Angle::ZERO, 1, 8, 900.0, 1.0),
                Task::new(2, Vec2::new(55.0, 40.0), Angle::ZERO, 0, 6, 900.0, 1.0),
            ],
            1.0 / 12.0,
            1,
        )
        .unwrap();
        (partition, scenario)
    }

    #[test]
    fn grid_rejects_bad_geometry() {
        assert!(Partition::grid(Vec2::ZERO, 0.0, 10.0, 1, 1, 1.0).is_err());
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 0, 1, 1.0).is_err());
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 1, 1, f64::NAN).is_err());
        // Two cells of width 5 cannot host a halo of 3 (2 * 3 > 5).
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 2, 1, 3.0).is_err());
        // ...but a single cell can (no interior boundary).
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 1, 1, 3.0).is_ok());
    }

    #[test]
    fn boundary_and_out_of_field_points_are_deterministic() {
        let p = Partition::grid(Vec2::ZERO, 200.0, 100.0, 2, 2, 0.0).unwrap();
        // Interior boundary point belongs to the higher cell.
        assert_eq!(p.cell_of(Vec2::new(100.0, 0.0)), 1);
        assert_eq!(p.cell_of(Vec2::new(99.999, 0.0)), 0);
        // The far edges clamp into the last cell instead of falling off.
        assert_eq!(p.cell_of(Vec2::new(200.0, 100.0)), 3);
        assert_eq!(p.cell_of(Vec2::new(500.0, -3.0)), 1);
        assert_eq!(p.cell_of(Vec2::new(-1.0, 250.0)), 2);
    }

    #[test]
    fn halo_validation_accepts_and_rejects() {
        let (partition, scenario) = two_cell_scenario();
        partition.validate_chargers(&scenario).unwrap();
        let mut bad = scenario.clone();
        bad.chargers[0].pos = Vec2::new(95.0, 50.0); // 5 m from x = 100
        match partition.validate_chargers(&bad) {
            Err(PartitionError::ChargerInHalo { charger: 0, .. }) => {}
            other => panic!("expected ChargerInHalo, got {other:?}"),
        }
    }

    #[test]
    fn split_renumbers_and_preserves_order() {
        let (partition, scenario) = two_cell_scenario();
        let cells = partition.split(&scenario).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].num_chargers(), 2); // chargers 0, 2
        assert_eq!(cells[1].num_chargers(), 1); // charger 1
        assert_eq!(cells[0].num_tasks(), 2); // tasks 0, 2
        assert_eq!(cells[1].num_tasks(), 1); // task 1
        assert_eq!(cells[0].chargers[1].pos, scenario.chargers[2].pos);
        assert_eq!(cells[0].tasks[1].device_pos, scenario.tasks[2].device_pos);
        for cell in &cells {
            cell.validate().unwrap();
        }
    }

    #[test]
    fn split_rejects_task_spanning_cells() {
        let (partition, mut scenario) = two_cell_scenario();
        // A device just across the boundary from a reachable charger: put
        // the charger legally outside the halo but move the task next to
        // it on the other side? That cannot reach (margin > halo). Instead
        // violate the precondition directly: a task in cell 1 whose only
        // reachable charger is in cell 0 requires an in-halo charger, so
        // craft it with a charger that breaks the halo rule.
        scenario.chargers[2].pos = Vec2::new(95.0, 50.0); // inside the halo
        scenario.tasks[1] = Task::new(
            1,
            Vec2::new(105.0, 50.0), // cell 1, 10 m from charger 2
            Angle::from_degrees(180.0),
            1,
            8,
            900.0,
            1.0,
        );
        match partition.split(&scenario) {
            Err(PartitionError::TaskSpansCells {
                task: 1,
                charger: 2,
                ..
            }) => {}
            other => panic!("expected TaskSpansCells, got {other:?}"),
        }
    }

    #[test]
    fn assignment_local_indices_are_dense_per_cell() {
        let (partition, scenario) = two_cell_scenario();
        let a = partition.assign(&scenario).unwrap();
        assert_eq!(a.charger_cell, vec![0, 1, 0]);
        assert_eq!(a.charger_local, vec![0, 0, 1]);
        assert_eq!(a.task_cell, vec![0, 1, 0]);
        assert_eq!(a.task_local, vec![0, 0, 1]);
    }
}
