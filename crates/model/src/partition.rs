//! Geographic **partitioning** of a scenario into independent cells.
//!
//! The paper's distributed algorithm (Alg. 3) is local by construction:
//! negotiation only ever happens between chargers that share a chargeable
//! task. A field cut into cells therefore decomposes into fully
//! independent scheduling problems **provided no task's reachable chargers
//! span two cells**. [`Partition`] makes that precondition checkable and
//! the decomposition mechanical:
//!
//! * [`Partition::cell_of`] deterministically maps any point — boundary
//!   points and out-of-field points included — to exactly one cell,
//! * [`Partition::validate_chargers`] checks the *charger-reach halo*: a
//!   charger closer than the halo width `D` (the charging radius) to an
//!   interior cell boundary could reach a device in the adjacent cell, so
//!   its placement is rejected. A scenario that passes is safe for **any**
//!   future task position,
//! * [`Partition::split`] cuts a scenario into per-cell sub-scenarios
//!   (ids renumbered, original order preserved), rejecting any task whose
//!   chargeable chargers do not all lie in the task's own cell.
//!
//! Cells are **axis-aligned rectangles**, not a fixed grid: a partition
//! starts as a uniform grid ([`Partition::grid`]) but is *elastic* —
//! [`Partition::split_cell`] halves a hot cell along its longer axis and
//! [`Partition::merge_cells`] re-joins two rect-adjacent cells, both
//! producing renumbered partitions whose halo invariant still holds.
//! [`RoutingMap`] versions the cell → shard assignment so a router can
//! swap topologies atomically and observers can tell which map served a
//! given reply.
//!
//! The preserved relative order of chargers and tasks inside each cell is
//! what keeps the per-cell sub-problems bit-compatible with the original:
//! every scheduler in this workspace iterates chargers and tasks in id
//! order, and renumbering that preserves relative order preserves every
//! such iteration (and every floating-point summation order) within a
//! cell.

use haste_geometry::Vec2;

use crate::{power, Scenario};

/// One cell of a partition: a half-open axis-aligned rectangle
/// `[x0, x1) × [y0, y1)` (right/top edges are inclusive only where they
/// coincide with the field boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRect {
    /// Left edge (inclusive).
    pub x0: f64,
    /// Bottom edge (inclusive).
    pub y0: f64,
    /// Right edge (exclusive unless it is the field's far edge).
    pub x1: f64,
    /// Top edge (exclusive unless it is the field's far edge).
    pub y1: f64,
}

impl CellRect {
    /// Width of the rect.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rect.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }
}

/// A rect-tiling partition of the deployment field with a charger-reach
/// halo. Built as a uniform grid (cells indexed row-major:
/// `cell = cy * cells_x + cx`) and mutated by [`Partition::split_cell`] /
/// [`Partition::merge_cells`], after which indices are positional in the
/// rect list.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    origin: Vec2,
    field_w: f64,
    field_h: f64,
    halo: f64,
    /// The base grid shape this partition was derived from — kept for
    /// topology reporting even after elastic splits/merges.
    grid: (usize, usize),
    cells: Vec<CellRect>,
}

/// Why a partition could not be built or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// The grid geometry itself is unusable.
    InvalidGeometry(&'static str),
    /// A charger sits within the halo of an interior cell boundary: a task
    /// just across that boundary could reach it, so per-cell independence
    /// would not hold for arbitrary submissions.
    ChargerInHalo {
        /// Index of the offending charger.
        charger: usize,
        /// The cell the charger maps to.
        cell: usize,
        /// Distance to the nearest interior boundary of its cell, meters.
        margin: f64,
    },
    /// A task's chargeable chargers are not all in the task's own cell —
    /// the independence precondition Algorithm 3 needs is violated.
    TaskSpansCells {
        /// Index of the offending task.
        task: usize,
        /// The cell the task's device maps to.
        task_cell: usize,
        /// A chargeable charger outside that cell.
        charger: usize,
        /// The cell that charger maps to.
        charger_cell: usize,
    },
    /// A sub-scenario failed model validation after the split.
    Invalid(crate::ModelError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidGeometry(reason) => {
                write!(f, "invalid partition geometry: {reason}")
            }
            PartitionError::ChargerInHalo {
                charger,
                cell,
                margin,
            } => write!(
                f,
                "charger {charger} in cell {cell} is {margin} m from an interior cell \
                 boundary (inside the reach halo): a device across the boundary could \
                 reach it"
            ),
            PartitionError::TaskSpansCells {
                task,
                task_cell,
                charger,
                charger_cell,
            } => write!(
                f,
                "task {task} (cell {task_cell}) is chargeable by charger {charger} \
                 (cell {charger_cell}): reachable chargers span cells"
            ),
            PartitionError::Invalid(e) => write!(f, "split produced an invalid scenario: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Where every charger and task of a scenario lands under a partition:
/// per-cell membership plus the renumbered local index of each. Relative
/// order within a cell is the original order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAssignment {
    /// `charger_cell[i]` — the cell charger `i` maps to.
    pub charger_cell: Vec<usize>,
    /// `charger_local[i]` — charger `i`'s id inside its cell's sub-scenario.
    pub charger_local: Vec<usize>,
    /// `task_cell[j]` — the cell task `j`'s device maps to.
    pub task_cell: Vec<usize>,
    /// `task_local[j]` — task `j`'s id inside its cell's sub-scenario.
    pub task_local: Vec<usize>,
}

impl Partition {
    /// Creates a uniform `cells_x × cells_y` grid over the axis-aligned
    /// field rectangle at `origin` with extent `field_w × field_h`, using
    /// halo width `halo` (normally the charging radius `D`).
    pub fn grid(
        origin: Vec2,
        field_w: f64,
        field_h: f64,
        cells_x: usize,
        cells_y: usize,
        halo: f64,
    ) -> Result<Partition, PartitionError> {
        Self::check_field(origin, field_w, field_h, halo)?;
        if cells_x == 0 || cells_y == 0 {
            return Err(PartitionError::InvalidGeometry(
                "the grid needs at least one cell per axis",
            ));
        }
        // A cell narrower than two halos has no interior a charger could
        // legally occupy (both boundaries of an interior cell are within
        // reach), which would make `validate_chargers` unsatisfiable.
        if cells_x > 1 && field_w / cells_x as f64 <= 2.0 * halo {
            return Err(PartitionError::InvalidGeometry(
                "cells are narrower than two halo widths along x",
            ));
        }
        if cells_y > 1 && field_h / cells_y as f64 <= 2.0 * halo {
            return Err(PartitionError::InvalidGeometry(
                "cells are shorter than two halo widths along y",
            ));
        }
        // Boundary i along an axis is `origin + extent * i / n` — the
        // exact expression the proptest suite pins, so grid-built rects
        // reproduce the historical floor-division cell mapping bit for
        // bit, boundary convention included.
        let xs: Vec<f64> = (0..=cells_x)
            .map(|i| origin.x + field_w * (i as f64) / (cells_x as f64))
            .collect();
        let ys: Vec<f64> = (0..=cells_y)
            .map(|i| origin.y + field_h * (i as f64) / (cells_y as f64))
            .collect();
        if xs.windows(2).any(|w| w[0] >= w[1]) || ys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PartitionError::InvalidGeometry(
                "cell boundaries are not strictly increasing",
            ));
        }
        let mut cells = Vec::with_capacity(cells_x * cells_y);
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                cells.push(CellRect {
                    x0: xs[cx],
                    y0: ys[cy],
                    x1: xs[cx + 1],
                    y1: ys[cy + 1],
                });
            }
        }
        Ok(Partition {
            origin,
            field_w,
            field_h,
            halo,
            grid: (cells_x, cells_y),
            cells,
        })
    }

    /// Rebuilds a partition from an explicit rect list (a snapshot restore
    /// path). Validation is structural: finite rects with positive extent
    /// that lie inside the field. Tiling *coverage* is not re-proven here —
    /// the rects come from a partition that enforced it on every mutation.
    pub fn from_rects(
        origin: Vec2,
        field_w: f64,
        field_h: f64,
        halo: f64,
        grid: (usize, usize),
        cells: Vec<CellRect>,
    ) -> Result<Partition, PartitionError> {
        Self::check_field(origin, field_w, field_h, halo)?;
        if grid.0 == 0 || grid.1 == 0 {
            return Err(PartitionError::InvalidGeometry(
                "the grid needs at least one cell per axis",
            ));
        }
        if cells.is_empty() {
            return Err(PartitionError::InvalidGeometry(
                "a partition needs at least one cell",
            ));
        }
        let (fx, fy) = (origin.x + field_w, origin.y + field_h);
        for r in &cells {
            let finite =
                r.x0.is_finite() && r.x1.is_finite() && r.y0.is_finite() && r.y1.is_finite();
            if !finite || r.x0 >= r.x1 || r.y0 >= r.y1 {
                return Err(PartitionError::InvalidGeometry(
                    "cell rect must be finite with positive extent",
                ));
            }
            if r.x0 < origin.x || r.x1 > fx || r.y0 < origin.y || r.y1 > fy {
                return Err(PartitionError::InvalidGeometry(
                    "cell rect lies outside the field",
                ));
            }
        }
        Ok(Partition {
            origin,
            field_w,
            field_h,
            halo,
            grid,
            cells,
        })
    }

    fn check_field(
        origin: Vec2,
        field_w: f64,
        field_h: f64,
        halo: f64,
    ) -> Result<(), PartitionError> {
        if !(origin.x.is_finite() && origin.y.is_finite()) {
            return Err(PartitionError::InvalidGeometry("origin must be finite"));
        }
        if !(field_w.is_finite() && field_w > 0.0 && field_h.is_finite() && field_h > 0.0) {
            return Err(PartitionError::InvalidGeometry(
                "field extent must be finite and positive",
            ));
        }
        if !(halo.is_finite() && halo >= 0.0) {
            return Err(PartitionError::InvalidGeometry(
                "halo must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// Cells along x of the **base grid** this partition was built from.
    /// After an elastic split or merge the live cell list is positional;
    /// see [`base_grid`](Partition::base_grid).
    #[inline]
    pub fn cells_x(&self) -> usize {
        self.grid.0
    }

    /// Cells along y of the **base grid** (see [`cells_x`](Partition::cells_x)).
    #[inline]
    pub fn cells_y(&self) -> usize {
        self.grid.1
    }

    /// Total number of cells in the live rect list.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The halo width (charger reach) this partition was built with.
    #[inline]
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The field origin.
    #[inline]
    pub fn origin(&self) -> Vec2 {
        self.origin
    }

    /// The field extent `(width, height)`.
    #[inline]
    pub fn field(&self) -> (f64, f64) {
        (self.field_w, self.field_h)
    }

    /// The live rect list, indexed by cell.
    #[inline]
    pub fn cells(&self) -> &[CellRect] {
        &self.cells
    }

    /// The rect of one cell.
    #[inline]
    pub fn cell_rect(&self, cell: usize) -> CellRect {
        self.cells[cell]
    }

    /// `Some((cells_x, cells_y))` while the live rect list is exactly the
    /// uniform base grid (bitwise — splits and merges that do not restore
    /// the original tiling return `None`), for `cell = cy * cells_x + cx`
    /// coordinate reporting.
    pub fn base_grid(&self) -> Option<(usize, usize)> {
        let (gx, gy) = self.grid;
        if self.cells.len() != gx * gy {
            return None;
        }
        let uniform = Partition::grid(self.origin, self.field_w, self.field_h, gx, gy, self.halo);
        match uniform {
            Ok(p) if p.cells == self.cells => Some((gx, gy)),
            _ => None,
        }
    }

    /// Deterministically maps any point to exactly one cell. The point is
    /// clamped into the field (NaN coordinates to the origin), then matched
    /// against the half-open rects — a point exactly on an interior
    /// boundary belongs to the *higher* cell, the far field edges fold into
    /// the edge cells. A bit-exact tiling always matches; should float
    /// pathology ever leave a clamped point unmatched, the nearest rect
    /// (lowest index on ties) is chosen so the map stays total.
    #[inline]
    pub fn cell_of(&self, p: Vec2) -> usize {
        let fx = self.origin.x + self.field_w;
        let fy = self.origin.y + self.field_h;
        // `max`/`min` propagate the non-NaN operand, so NaN clamps to the
        // origin — the historical convention for unmappable coordinates.
        let x = p.x.max(self.origin.x).min(fx);
        let y = p.y.max(self.origin.y).min(fy);
        for (i, r) in self.cells.iter().enumerate() {
            let in_x = x >= r.x0 && (x < r.x1 || (x == r.x1 && r.x1 == fx));
            let in_y = y >= r.y0 && (y < r.y1 || (y == r.y1 && r.y1 == fy));
            if in_x && in_y {
                return i;
            }
        }
        self.nearest_cell(x, y)
    }

    /// Total-map fallback for [`cell_of`](Partition::cell_of): nearest rect
    /// by squared distance, lowest index on ties.
    fn nearest_cell(&self, x: f64, y: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, r) in self.cells.iter().enumerate() {
            let dx = (r.x0 - x).max(x - r.x1).max(0.0);
            let dy = (r.y0 - y).max(y - r.y1).max(0.0);
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Distance from a point to the nearest *interior* boundary of its own
    /// cell (`f64::INFINITY` for a single-cell partition). Outer field
    /// edges do not count: a point beyond them still maps into the edge
    /// cell, so reach across them never leaves the cell.
    pub fn interior_margin(&self, p: Vec2) -> f64 {
        let r = self.cells[self.cell_of(p)];
        let fx = self.origin.x + self.field_w;
        let fy = self.origin.y + self.field_h;
        let mut margin = f64::INFINITY;
        if r.x0 > self.origin.x {
            margin = margin.min(p.x - r.x0);
        }
        if r.x1 < fx {
            margin = margin.min(r.x1 - p.x);
        }
        if r.y0 > self.origin.y {
            margin = margin.min(p.y - r.y0);
        }
        if r.y1 < fy {
            margin = margin.min(r.y1 - p.y);
        }
        margin
    }

    /// Splits cell `cell` in half along its longer axis (ties go to x),
    /// producing a renumbered partition: the children take indices `cell`
    /// and `cell + 1`, later cells shift up by one. Fails if either child
    /// would be too narrow to host a charger outside the new boundary's
    /// halo — the same invariant [`grid`](Partition::grid) enforces — so
    /// every partition this returns still satisfies the halo precondition
    /// for *some* charger placement.
    pub fn split_cell(&self, cell: usize) -> Result<Partition, PartitionError> {
        let Some(&r) = self.cells.get(cell) else {
            return Err(PartitionError::InvalidGeometry("cell index out of range"));
        };
        let along_x = r.width() >= r.height();
        let (lo, hi) = if along_x { (r.x0, r.x1) } else { (r.y0, r.y1) };
        let mid = 0.5 * (lo + hi);
        if !(mid > lo && mid < hi) {
            return Err(PartitionError::InvalidGeometry(
                "cell is too thin to split: midpoint is not strictly interior",
            ));
        }
        if (mid - lo) <= 2.0 * self.halo || (hi - mid) <= 2.0 * self.halo {
            return Err(PartitionError::InvalidGeometry(
                "split children would be narrower than two halo widths",
            ));
        }
        let (a, b) = if along_x {
            (CellRect { x1: mid, ..r }, CellRect { x0: mid, ..r })
        } else {
            (CellRect { y1: mid, ..r }, CellRect { y0: mid, ..r })
        };
        let mut cells = self.cells.clone();
        cells[cell] = a;
        cells.insert(cell + 1, b);
        Ok(Partition {
            cells,
            ..self.clone()
        })
    }

    /// Merges two cells whose rects form an exact rectangle (bit-exact
    /// shared edge, matching extents on the other axis), producing a
    /// renumbered partition: the merged cell takes the lower of the two
    /// indices, later cells shift down by one. The merged rect copies the
    /// outer coordinates verbatim, so `merge_cells` exactly inverts
    /// [`split_cell`](Partition::split_cell). Merging never violates the
    /// halo invariant: interior boundaries only disappear.
    pub fn merge_cells(&self, a: usize, b: usize) -> Result<Partition, PartitionError> {
        if a == b {
            return Err(PartitionError::InvalidGeometry(
                "cannot merge a cell with itself",
            ));
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (Some(&ra), Some(&rb)) = (self.cells.get(lo), self.cells.get(hi)) else {
            return Err(PartitionError::InvalidGeometry("cell index out of range"));
        };
        let merged = if ra.y0 == rb.y0 && ra.y1 == rb.y1 && ra.x1 == rb.x0 {
            CellRect { x1: rb.x1, ..ra }
        } else if ra.y0 == rb.y0 && ra.y1 == rb.y1 && rb.x1 == ra.x0 {
            CellRect { x0: rb.x0, ..ra }
        } else if ra.x0 == rb.x0 && ra.x1 == rb.x1 && ra.y1 == rb.y0 {
            CellRect { y1: rb.y1, ..ra }
        } else if ra.x0 == rb.x0 && ra.x1 == rb.x1 && rb.y1 == ra.y0 {
            CellRect { y0: rb.y0, ..ra }
        } else {
            return Err(PartitionError::InvalidGeometry(
                "cells do not form an exact rectangle",
            ));
        };
        let mut cells = self.cells.clone();
        cells[lo] = merged;
        cells.remove(hi);
        Ok(Partition {
            cells,
            ..self.clone()
        })
    }

    /// Checks the charger-reach halo: every charger must be at least the
    /// halo width away from every interior boundary of its cell. A
    /// scenario that passes stays per-cell independent for **any** task
    /// position (a device a charger can reach is within `halo` of it, so
    /// it cannot lie across an interior boundary). The epsilon matches the
    /// range cutoff of [`power::chargeable`].
    pub fn validate_chargers(&self, scenario: &Scenario) -> Result<(), PartitionError> {
        for (i, charger) in scenario.chargers.iter().enumerate() {
            let margin = self.interior_margin(charger.pos);
            if margin <= self.halo + 1e-12 {
                return Err(PartitionError::ChargerInHalo {
                    charger: i,
                    cell: self.cell_of(charger.pos),
                    margin,
                });
            }
        }
        Ok(())
    }

    /// Computes where every charger and task lands, with renumbered local
    /// indices (relative order within a cell preserved). Rejects a task
    /// whose chargeable chargers do not all lie in the task's own cell —
    /// the independence precondition.
    pub fn assign(&self, scenario: &Scenario) -> Result<CellAssignment, PartitionError> {
        let mut charger_count = vec![0usize; self.num_cells()];
        let mut charger_cell = Vec::with_capacity(scenario.num_chargers());
        let mut charger_local = Vec::with_capacity(scenario.num_chargers());
        for charger in &scenario.chargers {
            let cell = self.cell_of(charger.pos);
            charger_cell.push(cell);
            charger_local.push(charger_count[cell]);
            charger_count[cell] += 1;
        }
        let mut task_count = vec![0usize; self.num_cells()];
        let mut task_cell = Vec::with_capacity(scenario.num_tasks());
        let mut task_local = Vec::with_capacity(scenario.num_tasks());
        for (j, task) in scenario.tasks.iter().enumerate() {
            let cell = self.cell_of(task.device_pos);
            for (i, charger) in scenario.chargers.iter().enumerate() {
                if charger_cell[i] != cell && power::chargeable(&scenario.params, charger, task) {
                    return Err(PartitionError::TaskSpansCells {
                        task: j,
                        task_cell: cell,
                        charger: i,
                        charger_cell: charger_cell[i],
                    });
                }
            }
            task_cell.push(cell);
            task_local.push(task_count[cell]);
            task_count[cell] += 1;
        }
        Ok(CellAssignment {
            charger_cell,
            charger_local,
            task_cell,
            task_local,
        })
    }

    /// Splits a scenario into one sub-scenario per cell. Chargers and
    /// tasks are renumbered to their local indices (original order
    /// preserved within each cell); params, grid, delays and the utility
    /// model are shared verbatim. Fails if any task's chargeable chargers
    /// span cells (see [`assign`](Partition::assign)).
    pub fn split(&self, scenario: &Scenario) -> Result<Vec<Scenario>, PartitionError> {
        let assignment = self.assign(scenario)?;
        let mut cells: Vec<Scenario> = (0..self.num_cells())
            .map(|_| Scenario {
                params: scenario.params,
                grid: scenario.grid,
                chargers: Vec::new(),
                tasks: Vec::new(),
                rho: scenario.rho,
                tau: scenario.tau,
                utility: scenario.utility,
            })
            .collect();
        for (i, charger) in scenario.chargers.iter().enumerate() {
            let mut local = *charger;
            local.id = crate::ChargerId(assignment.charger_local[i] as u32);
            cells[assignment.charger_cell[i]].chargers.push(local);
        }
        for (j, task) in scenario.tasks.iter().enumerate() {
            let mut local = *task;
            local.id = crate::TaskId(assignment.task_local[j] as u32);
            cells[assignment.task_cell[j]].tasks.push(local);
        }
        for cell in &cells {
            cell.validate().map_err(PartitionError::Invalid)?;
        }
        Ok(cells)
    }
}

/// A **versioned** cell → shard assignment. The router consults the map on
/// every route and bumps the version atomically when a split or merge
/// swaps the topology, so `SHARDS?` output (and any future cached client
/// routing) can be checked against the map that actually served a request.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingMap {
    version: u64,
    shard_of: Vec<u32>,
}

impl RoutingMap {
    /// The identity map over `cells` cells (cell `i` → shard `i`),
    /// version 1 — the state of a freshly loaded topology.
    pub fn identity(cells: usize) -> RoutingMap {
        RoutingMap {
            version: 1,
            shard_of: (0..cells as u32).collect(),
        }
    }

    /// The map's version; bumped by one on every swap.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shard serving `cell`.
    #[inline]
    pub fn shard_of(&self, cell: usize) -> u32 {
        self.shard_of[cell]
    }

    /// Number of cells the map covers.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.shard_of.len()
    }

    /// The identity map over a renumbered topology of `cells` cells, with
    /// the version advanced — what a split or merge installs when it swaps
    /// the routing map between ticks.
    pub fn renumbered(&self, cells: usize) -> RoutingMap {
        RoutingMap {
            version: self.version + 1,
            shard_of: (0..cells as u32).collect(),
        }
    }

    /// Restores a map at an explicit version (snapshot restore path).
    pub fn at_version(version: u64, cells: usize) -> RoutingMap {
        RoutingMap {
            version,
            shard_of: (0..cells as u32).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Charger, ChargingParams, Task, TimeGrid};
    use haste_geometry::Angle;

    fn two_cell_scenario() -> (Partition, Scenario) {
        // 200 × 100 field, two 100-wide cells, halo 20 (the default D).
        let partition = Partition::grid(Vec2::ZERO, 200.0, 100.0, 2, 1, 20.0).unwrap();
        let scenario = Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(8),
            vec![
                Charger::new(0, Vec2::new(40.0, 50.0)),
                Charger::new(1, Vec2::new(160.0, 50.0)),
                Charger::new(2, Vec2::new(60.0, 30.0)),
            ],
            vec![
                Task::new(0, Vec2::new(50.0, 50.0), Angle::ZERO, 0, 8, 900.0, 1.0),
                Task::new(1, Vec2::new(150.0, 50.0), Angle::ZERO, 1, 8, 900.0, 1.0),
                Task::new(2, Vec2::new(55.0, 40.0), Angle::ZERO, 0, 6, 900.0, 1.0),
            ],
            1.0 / 12.0,
            1,
        )
        .unwrap();
        (partition, scenario)
    }

    #[test]
    fn grid_rejects_bad_geometry() {
        assert!(Partition::grid(Vec2::ZERO, 0.0, 10.0, 1, 1, 1.0).is_err());
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 0, 1, 1.0).is_err());
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 1, 1, f64::NAN).is_err());
        // Two cells of width 5 cannot host a halo of 3 (2 * 3 > 5).
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 2, 1, 3.0).is_err());
        // ...but a single cell can (no interior boundary).
        assert!(Partition::grid(Vec2::ZERO, 10.0, 10.0, 1, 1, 3.0).is_ok());
    }

    #[test]
    fn boundary_and_out_of_field_points_are_deterministic() {
        let p = Partition::grid(Vec2::ZERO, 200.0, 100.0, 2, 2, 0.0).unwrap();
        // Interior boundary point belongs to the higher cell.
        assert_eq!(p.cell_of(Vec2::new(100.0, 0.0)), 1);
        assert_eq!(p.cell_of(Vec2::new(99.999, 0.0)), 0);
        // The far edges clamp into the last cell instead of falling off.
        assert_eq!(p.cell_of(Vec2::new(200.0, 100.0)), 3);
        assert_eq!(p.cell_of(Vec2::new(500.0, -3.0)), 1);
        assert_eq!(p.cell_of(Vec2::new(-1.0, 250.0)), 2);
        assert_eq!(p.cell_of(Vec2::new(f64::NAN, 60.0)), 2);
    }

    #[test]
    fn halo_validation_accepts_and_rejects() {
        let (partition, scenario) = two_cell_scenario();
        partition.validate_chargers(&scenario).unwrap();
        let mut bad = scenario.clone();
        bad.chargers[0].pos = Vec2::new(95.0, 50.0); // 5 m from x = 100
        match partition.validate_chargers(&bad) {
            Err(PartitionError::ChargerInHalo { charger: 0, .. }) => {}
            other => panic!("expected ChargerInHalo, got {other:?}"),
        }
    }

    #[test]
    fn split_renumbers_and_preserves_order() {
        let (partition, scenario) = two_cell_scenario();
        let cells = partition.split(&scenario).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].num_chargers(), 2); // chargers 0, 2
        assert_eq!(cells[1].num_chargers(), 1); // charger 1
        assert_eq!(cells[0].num_tasks(), 2); // tasks 0, 2
        assert_eq!(cells[1].num_tasks(), 1); // task 1
        assert_eq!(cells[0].chargers[1].pos, scenario.chargers[2].pos);
        assert_eq!(cells[0].tasks[1].device_pos, scenario.tasks[2].device_pos);
        for cell in &cells {
            cell.validate().unwrap();
        }
    }

    #[test]
    fn split_rejects_task_spanning_cells() {
        let (partition, mut scenario) = two_cell_scenario();
        // A device just across the boundary from a reachable charger: put
        // the charger legally outside the halo but move the task next to
        // it on the other side? That cannot reach (margin > halo). Instead
        // violate the precondition directly: a task in cell 1 whose only
        // reachable charger is in cell 0 requires an in-halo charger, so
        // craft it with a charger that breaks the halo rule.
        scenario.chargers[2].pos = Vec2::new(95.0, 50.0); // inside the halo
        scenario.tasks[1] = Task::new(
            1,
            Vec2::new(105.0, 50.0), // cell 1, 10 m from charger 2
            Angle::from_degrees(180.0),
            1,
            8,
            900.0,
            1.0,
        );
        match partition.split(&scenario) {
            Err(PartitionError::TaskSpansCells {
                task: 1,
                charger: 2,
                ..
            }) => {}
            other => panic!("expected TaskSpansCells, got {other:?}"),
        }
    }

    #[test]
    fn assignment_local_indices_are_dense_per_cell() {
        let (partition, scenario) = two_cell_scenario();
        let a = partition.assign(&scenario).unwrap();
        assert_eq!(a.charger_cell, vec![0, 1, 0]);
        assert_eq!(a.charger_local, vec![0, 0, 1]);
        assert_eq!(a.task_cell, vec![0, 1, 0]);
        assert_eq!(a.task_local, vec![0, 0, 1]);
    }

    #[test]
    fn split_cell_renumbers_and_merge_inverts() {
        // 400 × 100, 2 × 1, halo 20: cell 0 is [0,200), wide enough to split.
        let p = Partition::grid(Vec2::ZERO, 400.0, 100.0, 2, 1, 20.0).unwrap();
        let split = p.split_cell(0).unwrap();
        assert_eq!(split.num_cells(), 3);
        assert_eq!(split.cell_rect(0).x1, 100.0);
        assert_eq!(split.cell_rect(1).x0, 100.0);
        assert_eq!(split.cell_rect(2), p.cell_rect(1)); // old cell 1 shifted
        assert_eq!(split.cell_of(Vec2::new(50.0, 50.0)), 0);
        assert_eq!(split.cell_of(Vec2::new(150.0, 50.0)), 1);
        assert_eq!(split.cell_of(Vec2::new(250.0, 50.0)), 2);
        // The boundary point goes to the higher cell, as on the base grid.
        assert_eq!(split.cell_of(Vec2::new(100.0, 50.0)), 1);
        assert_eq!(split.base_grid(), None);
        // Merge is the exact inverse, and argument order does not matter.
        assert_eq!(split.merge_cells(0, 1).unwrap(), p);
        assert_eq!(split.merge_cells(1, 0).unwrap(), p);
        assert_eq!(p.base_grid(), Some((2, 1)));
    }

    #[test]
    fn split_cell_prefers_longer_axis() {
        // A 100 × 400 single cell splits along y.
        let p = Partition::grid(Vec2::ZERO, 100.0, 400.0, 1, 1, 20.0).unwrap();
        let split = p.split_cell(0).unwrap();
        assert_eq!(split.cell_rect(0).y1, 200.0);
        assert_eq!(split.cell_rect(1).y0, 200.0);
        assert_eq!(split.merge_cells(0, 1).unwrap(), p);
    }

    #[test]
    fn split_cell_rejects_thin_cells_and_bad_merges() {
        let p = Partition::grid(Vec2::ZERO, 200.0, 100.0, 2, 1, 30.0).unwrap();
        // Children would be 50 wide — not above 2 × 30.
        assert!(p.split_cell(0).is_err());
        assert!(p.split_cell(7).is_err());
        assert!(p.merge_cells(0, 0).is_err());
        assert!(p.merge_cells(0, 7).is_err());
        // Diagonal cells of a 2 × 2 grid do not form a rectangle.
        let q = Partition::grid(Vec2::ZERO, 200.0, 200.0, 2, 2, 20.0).unwrap();
        assert!(q.merge_cells(0, 3).is_err());
        // Adjacent ones do, along both axes.
        assert!(q.merge_cells(0, 1).is_ok());
        assert!(q.merge_cells(0, 2).is_ok());
        assert!(q.merge_cells(2, 0).is_ok());
    }

    #[test]
    fn routing_map_versions_swaps() {
        let m = RoutingMap::identity(2);
        assert_eq!(m.version(), 1);
        assert_eq!(m.num_cells(), 2);
        assert_eq!(m.shard_of(1), 1);
        let m2 = m.renumbered(3);
        assert_eq!(m2.version(), 2);
        assert_eq!(m2.num_cells(), 3);
        assert_eq!(m2.shard_of(2), 2);
        assert_eq!(RoutingMap::at_version(7, 3).version(), 7);
    }
}
