//! Constants of the directional charging model.

use serde::{Deserialize, Serialize};

/// How a device's harvested power depends on the direction the energy
/// arrives from, *within* its receiving sector.
///
/// The paper's model is isotropic inside the sector ([`ReceiverGain::Uniform`]);
/// its cited future work (Lin et al., INFOCOM 2019) observes that real
/// rechargeable sensors harvest anisotropically. [`ReceiverGain::Cosine`]
/// models that: the power is scaled by `cos^e(ψ)` where `ψ` is the angle
/// between the device's facing direction and the incoming energy. The gain
/// is a fixed factor per (charger, device) pair — independent of the
/// charger's rotating orientation — so every scheduling result and
/// guarantee in this crate family carries over unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ReceiverGain {
    /// Isotropic within the receiving sector (the paper's model).
    #[default]
    Uniform,
    /// `cos^exponent` roll-off from the device's facing direction.
    Cosine {
        /// Roll-off exponent `e > 0`; larger = more directional.
        exponent: f64,
    },
}

impl ReceiverGain {
    /// Gain factor for energy arriving `offset` radians off the device's
    /// facing direction (callers guarantee `offset ≤ A_o / 2`).
    #[inline]
    pub fn factor(&self, offset: f64) -> f64 {
        match *self {
            ReceiverGain::Uniform => 1.0,
            ReceiverGain::Cosine { exponent } => offset.cos().max(0.0).powf(exponent),
        }
    }
}

/// Hardware and environment constants of the directional charging model
/// (Section 3.1 of the paper).
///
/// The charging power received by a device at distance `d` from a charger
/// that covers it (and that it covers back) is `α / (d + β)²`; coverage is
/// limited to distance `D` and to the two sector opening angles `A_s`
/// (charger side) and `A_o` (device side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargingParams {
    /// Power-law numerator `α` (watt·m²-ish, fitted empirically).
    pub alpha: f64,
    /// Power-law offset `β` in meters.
    pub beta: f64,
    /// Charging/receiving radius `D` in meters.
    pub radius: f64,
    /// Full charging angle `A_s` of chargers, in radians.
    pub charging_angle: f64,
    /// Full receiving angle `A_o` of devices, in radians.
    pub receiving_angle: f64,
    /// Anisotropy of the device-side harvest (default: the paper's
    /// isotropic sector).
    #[serde(default)]
    pub receiver_gain: ReceiverGain,
}

impl ChargingParams {
    /// The simulation defaults of the paper's Section 7.1:
    /// `α = 10⁴`, `β = 40`, `D = 20 m`, `A_s = A_o = π/3`.
    pub fn simulation_default() -> Self {
        ChargingParams {
            alpha: 10_000.0,
            beta: 40.0,
            radius: 20.0,
            charging_angle: std::f64::consts::FRAC_PI_3,
            receiving_angle: std::f64::consts::FRAC_PI_3,
            receiver_gain: ReceiverGain::Uniform,
        }
    }

    /// The empirical constants the paper fits to its Powercast TX91501
    /// testbed (Section 8): `α = 41.93`, `β = 0.6428`, `D = 4 m`,
    /// `A_s = π/3`, `A_o = 2π/3`.
    pub fn testbed_tx91501() -> Self {
        ChargingParams {
            alpha: 41.93,
            beta: 0.6428,
            radius: 4.0,
            charging_angle: std::f64::consts::FRAC_PI_3,
            receiving_angle: 2.0 * std::f64::consts::FRAC_PI_3,
            receiver_gain: ReceiverGain::Uniform,
        }
    }

    /// Returns a copy with a different charging angle `A_s`.
    pub fn with_charging_angle(mut self, a_s: f64) -> Self {
        self.charging_angle = a_s;
        self
    }

    /// Returns a copy with a different receiving angle `A_o`.
    pub fn with_receiving_angle(mut self, a_o: f64) -> Self {
        self.receiving_angle = a_o;
        self
    }

    /// Validates the parameters (all strictly positive where required,
    /// angles within `(0, 2π]`).
    pub fn validate(&self) -> Result<(), crate::ModelError> {
        use crate::ModelError::InvalidParams;
        let tau = std::f64::consts::TAU;
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(InvalidParams("alpha must be finite and positive"));
        }
        if !(self.beta.is_finite() && self.beta >= 0.0) {
            return Err(InvalidParams("beta must be finite and non-negative"));
        }
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err(InvalidParams("radius must be finite and positive"));
        }
        if !(self.charging_angle > 0.0 && self.charging_angle <= tau + 1e-12) {
            return Err(InvalidParams("charging_angle must be in (0, 2π]"));
        }
        if !(self.receiving_angle > 0.0 && self.receiving_angle <= tau + 1e-12) {
            return Err(InvalidParams("receiving_angle must be in (0, 2π]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ChargingParams::simulation_default().validate().unwrap();
        ChargingParams::testbed_tx91501().validate().unwrap();
    }

    #[test]
    fn builders() {
        let p = ChargingParams::simulation_default()
            .with_charging_angle(1.0)
            .with_receiving_angle(2.0);
        assert_eq!(p.charging_angle, 1.0);
        assert_eq!(p.receiving_angle, 2.0);
    }

    #[test]
    fn rejects_bad_values() {
        let mut p = ChargingParams::simulation_default();
        p.alpha = -1.0;
        assert!(p.validate().is_err());
        let mut p = ChargingParams::simulation_default();
        p.radius = 0.0;
        assert!(p.validate().is_err());
        let mut p = ChargingParams::simulation_default();
        p.charging_angle = 0.0;
        assert!(p.validate().is_err());
        let mut p = ChargingParams::simulation_default();
        p.receiving_angle = 10.0;
        assert!(p.validate().is_err());
        let mut p = ChargingParams::simulation_default();
        p.beta = f64::NAN;
        assert!(p.validate().is_err());
    }
}
