//! Electromagnetic radiation (EMR) field computation.
//!
//! The paper's related-work line (the authors' *Safe Charging* / SCAPE
//! papers, refs. [42]–[48]) constrains charger scheduling so the aggregate
//! EMR intensity never exceeds a safety threshold anywhere in the field.
//! This module provides the field model those constraints need: the EMR
//! intensity at a point is proportional to the total charging power
//! impinging on it — every charger whose *charging sector* covers the point
//! contributes `α/(d+β)²`, regardless of any receiving sector (radiation
//! does not care where a sensor happens to face).
//!
//! `haste-core::solve_offline_emr` builds an EMR-constrained scheduler on
//! top of this.

use haste_geometry::Vec2;

use crate::{power, Charger, ChargingParams, Orientation, Scenario, Schedule};

/// EMR intensity at `point` given each charger's orientation in one slot
/// (`None` = off / switching = no radiation). Units follow the power model
/// (the proportionality constant γ of the physical EMR model is absorbed
/// into the caller's threshold).
pub fn intensity_at(
    params: &ChargingParams,
    chargers: &[Charger],
    orientations: &[Orientation],
    point: Vec2,
) -> f64 {
    debug_assert_eq!(chargers.len(), orientations.len());
    chargers
        .iter()
        .zip(orientations)
        .map(|(charger, &theta)| contribution(params, charger, theta, point))
        .sum()
}

/// A single charger's EMR contribution at `point`.
#[inline]
pub fn contribution(
    params: &ChargingParams,
    charger: &Charger,
    theta: Orientation,
    point: Vec2,
) -> f64 {
    let Some(theta) = theta else { return 0.0 };
    let d = charger.pos.distance(point);
    if d > params.radius + 1e-12 {
        return 0.0;
    }
    if !power::covers_direction(params, charger.pos, theta, point) {
        return 0.0;
    }
    power::range_power(params, d)
}

/// A regular grid of sample points covering the rectangle
/// `[min, max]` with spacing `resolution` (both borders included).
pub fn sample_grid(min: Vec2, max: Vec2, resolution: f64) -> Vec<Vec2> {
    assert!(resolution > 0.0, "resolution must be positive");
    let nx = ((max.x - min.x) / resolution).ceil() as usize + 1;
    let ny = ((max.y - min.y) / resolution).ceil() as usize + 1;
    let mut points = Vec::with_capacity(nx * ny);
    for ix in 0..nx {
        for iy in 0..ny {
            points.push(Vec2::new(
                (min.x + ix as f64 * resolution).min(max.x),
                (min.y + iy as f64 * resolution).min(max.y),
            ));
        }
    }
    points
}

/// The default sampling rectangle of a scenario: the bounding box of all
/// chargers and devices, padded by the charging radius.
pub fn scenario_bounds(scenario: &Scenario) -> (Vec2, Vec2) {
    let mut min = Vec2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    let mut absorb = |p: Vec2| {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    };
    for c in &scenario.chargers {
        absorb(c.pos);
    }
    for t in &scenario.tasks {
        absorb(t.device_pos);
    }
    if !min.x.is_finite() {
        return (Vec2::ZERO, Vec2::ZERO);
    }
    let pad = scenario.params.radius;
    (
        Vec2::new(min.x - pad, min.y - pad),
        Vec2::new(max.x + pad, max.y + pad),
    )
}

/// The peak EMR intensity over all slots of a schedule and all sample
/// points. The paper's safety requirement is `peak ≤ threshold`.
pub fn peak_intensity(scenario: &Scenario, schedule: &Schedule, points: &[Vec2]) -> f64 {
    let mut peak = 0.0f64;
    let mut orientations = vec![None; scenario.num_chargers()];
    for k in 0..schedule.num_slots() {
        for (i, o) in orientations.iter_mut().enumerate() {
            *o = schedule.get(crate::ChargerId(i as u32), k);
        }
        for &p in points {
            let v = intensity_at(&scenario.params, &scenario.chargers, &orientations, p);
            peak = peak.max(v);
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Task, TimeGrid};
    use haste_geometry::Angle;

    fn params() -> ChargingParams {
        ChargingParams::simulation_default()
    }

    #[test]
    fn contributions_superpose() {
        let p = params();
        let chargers = vec![
            Charger::new(0, Vec2::new(-5.0, 0.0)),
            Charger::new(1, Vec2::new(5.0, 0.0)),
        ];
        // Both aim at the origin.
        let orientations = vec![
            Some(Angle::from_degrees(0.0)),
            Some(Angle::from_degrees(180.0)),
        ];
        let each = power::range_power(&p, 5.0);
        let total = intensity_at(&p, &chargers, &orientations, Vec2::ZERO);
        assert!((total - 2.0 * each).abs() < 1e-12);
        // One switched off halves it.
        let one = intensity_at(&p, &chargers, &[orientations[0], None], Vec2::ZERO);
        assert!((one - each).abs() < 1e-12);
    }

    #[test]
    fn sector_and_radius_limit_radiation() {
        let p = params();
        let charger = [Charger::new(0, Vec2::ZERO)];
        let aim_east = [Some(Angle::ZERO)];
        // Point behind the charger: zero.
        assert_eq!(
            intensity_at(&p, &charger, &aim_east, Vec2::new(-5.0, 0.0)),
            0.0
        );
        // Point beyond the radius: zero.
        assert_eq!(
            intensity_at(&p, &charger, &aim_east, Vec2::new(30.0, 0.0)),
            0.0
        );
        // Point in the beam: positive.
        assert!(intensity_at(&p, &charger, &aim_east, Vec2::new(5.0, 0.0)) > 0.0);
    }

    #[test]
    fn grid_covers_rectangle() {
        let pts = sample_grid(Vec2::ZERO, Vec2::new(10.0, 5.0), 2.5);
        assert_eq!(pts.len(), 5 * 3);
        assert!(pts.iter().all(|p| (0.0..=10.0).contains(&p.x)));
        assert!(pts.iter().all(|p| (0.0..=5.0).contains(&p.y)));
        assert!(pts.contains(&Vec2::new(10.0, 5.0)));
    }

    #[test]
    fn peak_intensity_of_empty_schedule_is_zero() {
        let s = Scenario::new(
            params(),
            TimeGrid::minutes(3),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![Task::new(
                0,
                Vec2::new(5.0, 0.0),
                Angle::from_degrees(180.0),
                0,
                3,
                100.0,
                1.0,
            )],
            0.0,
            0,
        )
        .unwrap();
        let (lo, hi) = scenario_bounds(&s);
        let pts = sample_grid(lo, hi, 5.0);
        let empty = Schedule::empty(1, 3);
        assert_eq!(peak_intensity(&s, &empty, &pts), 0.0);
        let mut aimed = Schedule::empty(1, 3);
        aimed.set(crate::ChargerId(0), 1, Some(Angle::ZERO));
        assert!(peak_intensity(&s, &aimed, &pts) > 0.0);
    }

    #[test]
    fn bounds_pad_by_radius() {
        let s = Scenario::new(
            params(),
            TimeGrid::minutes(1),
            vec![Charger::new(0, Vec2::new(10.0, 10.0))],
            vec![Task::new(
                0,
                Vec2::new(12.0, 10.0),
                Angle::from_degrees(180.0),
                0,
                1,
                100.0,
                1.0,
            )],
            0.0,
            0,
        )
        .unwrap();
        let (lo, hi) = scenario_bounds(&s);
        assert!((lo.x - (10.0 - 20.0)).abs() < 1e-12);
        assert!((hi.x - (12.0 + 20.0)).abs() < 1e-12);
    }
}
