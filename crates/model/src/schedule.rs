//! Per-charger, per-slot orientation schedules.

use haste_geometry::Angle;
use serde::{Deserialize, Serialize};

use crate::{ChargerId, Slot};

/// A charger's state in one slot: either it holds an orientation or it is
/// unassigned (off / the paper's `Φ` outside of switching).
pub type Orientation = Option<Angle>;

/// The decision variable of HASTE: an orientation per charger per slot.
///
/// `None` entries denote a charger that is not asked to serve anything in
/// that slot; it emits no power and — since it does not rotate — incurs no
/// switching delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `orientations[i][k]` is charger `i`'s orientation in slot `k`.
    orientations: Vec<Vec<Orientation>>,
}

impl Schedule {
    /// An empty schedule (`n` chargers, `k` slots, everything unassigned).
    pub fn empty(num_chargers: usize, num_slots: usize) -> Self {
        Schedule {
            orientations: vec![vec![None; num_slots]; num_chargers],
        }
    }

    /// Number of chargers.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.orientations.len()
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.orientations.first().map_or(0, Vec::len)
    }

    /// The orientation of charger `i` in slot `k`.
    #[inline]
    pub fn get(&self, charger: ChargerId, slot: Slot) -> Orientation {
        self.orientations[charger.index()][slot]
    }

    /// Sets the orientation of charger `i` in slot `k`.
    #[inline]
    pub fn set(&mut self, charger: ChargerId, slot: Slot, theta: Orientation) {
        self.orientations[charger.index()][slot] = theta;
    }

    /// The full row of orientations for one charger.
    #[inline]
    pub fn row(&self, charger: ChargerId) -> &[Orientation] {
        &self.orientations[charger.index()]
    }

    /// Number of orientation *switches* charger `i` performs over the whole
    /// schedule: transitions between two different assigned orientations,
    /// plus the initial rotation into the first assigned orientation (the
    /// paper starts every charger at `θ_i(0) = Φ`). `None` gaps do not
    /// rotate the charger.
    pub fn switch_count(&self, charger: ChargerId) -> usize {
        let mut prev: Orientation = None;
        let mut switches = 0;
        for &o in &self.orientations[charger.index()] {
            if let Some(theta) = o {
                if prev != Some(theta) {
                    switches += 1;
                }
                prev = Some(theta);
            }
        }
        switches
    }

    /// Fills every unassigned slot with the charger's most recent assigned
    /// orientation ("hold"). Chargers in the paper always hold *some*
    /// orientation; since re-assuming the previous orientation incurs no
    /// switching delay and charging is free, holding weakly dominates
    /// going dark — schedulers apply this as a final post-pass.
    pub fn hold_orientations(&mut self) {
        for row in &mut self.orientations {
            let mut last: Orientation = None;
            for slot in row.iter_mut() {
                match *slot {
                    Some(theta) => last = Some(theta),
                    None => *slot = last,
                }
            }
        }
    }

    /// Overwrites the suffix of this schedule starting at `from_slot` with
    /// the corresponding entries of `other` — the primitive the online
    /// scheduler uses when a re-negotiated plan takes effect after the
    /// rescheduling delay.
    pub fn splice_from(&mut self, other: &Schedule, from_slot: Slot) {
        assert_eq!(self.num_chargers(), other.num_chargers());
        assert_eq!(self.num_slots(), other.num_slots());
        for (row, other_row) in self.orientations.iter_mut().zip(&other.orientations) {
            row[from_slot..].copy_from_slice(&other_row[from_slot..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deg(d: f64) -> Angle {
        Angle::from_degrees(d)
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::empty(3, 5);
        assert_eq!(s.num_chargers(), 3);
        assert_eq!(s.num_slots(), 5);
        assert_eq!(s.get(ChargerId(1), 2), None);
        assert_eq!(s.switch_count(ChargerId(0)), 0);
    }

    #[test]
    fn set_and_get() {
        let mut s = Schedule::empty(2, 4);
        s.set(ChargerId(0), 1, Some(deg(45.0)));
        assert_eq!(s.get(ChargerId(0), 1), Some(deg(45.0)));
        assert_eq!(s.get(ChargerId(0), 0), None);
        assert_eq!(s.row(ChargerId(0))[1], Some(deg(45.0)));
    }

    #[test]
    fn switch_counting() {
        let mut s = Schedule::empty(1, 6);
        let c = ChargerId(0);
        // Φ, 10°, 10°, Φ, 10°, 20°  →  switches: into 10° once, 10°→20° once.
        s.set(c, 1, Some(deg(10.0)));
        s.set(c, 2, Some(deg(10.0)));
        s.set(c, 4, Some(deg(10.0)));
        s.set(c, 5, Some(deg(20.0)));
        assert_eq!(s.switch_count(c), 2);
    }

    #[test]
    fn hold_fills_gaps_without_new_switches() {
        let mut s = Schedule::empty(1, 6);
        let c = ChargerId(0);
        s.set(c, 1, Some(deg(10.0)));
        s.set(c, 4, Some(deg(20.0)));
        let switches_before = s.switch_count(c);
        s.hold_orientations();
        assert_eq!(s.get(c, 0), None); // nothing to hold yet
        assert_eq!(s.get(c, 2), Some(deg(10.0)));
        assert_eq!(s.get(c, 3), Some(deg(10.0)));
        assert_eq!(s.get(c, 5), Some(deg(20.0)));
        assert_eq!(s.switch_count(c), switches_before);
    }

    #[test]
    fn splice_replaces_suffix_only() {
        let mut a = Schedule::empty(1, 4);
        let mut b = Schedule::empty(1, 4);
        let c = ChargerId(0);
        a.set(c, 0, Some(deg(1.0)));
        a.set(c, 3, Some(deg(2.0)));
        b.set(c, 0, Some(deg(99.0)));
        b.set(c, 2, Some(deg(3.0)));
        a.splice_from(&b, 2);
        assert_eq!(a.get(c, 0), Some(deg(1.0))); // prefix kept
        assert_eq!(a.get(c, 2), Some(deg(3.0))); // suffix replaced
        assert_eq!(a.get(c, 3), None);
    }
}
