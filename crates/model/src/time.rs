//! The discrete slot model of the paper.

use serde::{Deserialize, Serialize};

/// Index of a time slot (`k` in the paper), zero-based.
pub type Slot = usize;

/// The discrete time model: `K` slots of uniform duration `T_s`.
///
/// The paper assumes task release times fall at slot starts and end times at
/// slot ends, so a task occupies an integral, contiguous range of slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    /// Slot duration `T_s` in seconds.
    pub slot_seconds: f64,
    /// Number of slots `K` under consideration.
    pub num_slots: usize,
}

impl TimeGrid {
    /// Creates a grid of `num_slots` slots of `slot_seconds` seconds each.
    pub fn new(slot_seconds: f64, num_slots: usize) -> Self {
        TimeGrid {
            slot_seconds,
            num_slots,
        }
    }

    /// A grid with the paper's default `T_s` = 1 minute.
    pub fn minutes(num_slots: usize) -> Self {
        TimeGrid::new(60.0, num_slots)
    }

    /// Start time of slot `k` in seconds.
    #[inline]
    pub fn slot_start(&self, k: Slot) -> f64 {
        k as f64 * self.slot_seconds
    }

    /// End time of slot `k` in seconds.
    #[inline]
    pub fn slot_end(&self, k: Slot) -> f64 {
        (k + 1) as f64 * self.slot_seconds
    }

    /// Total horizon covered by the grid, in seconds.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.num_slots as f64 * self.slot_seconds
    }

    /// Iterator over all slot indices.
    pub fn slots(&self) -> impl Iterator<Item = Slot> {
        0..self.num_slots
    }

    /// Validates the grid.
    pub fn validate(&self) -> Result<(), crate::ModelError> {
        use crate::ModelError::InvalidTimeGrid;
        if !(self.slot_seconds.is_finite() && self.slot_seconds > 0.0) {
            return Err(InvalidTimeGrid("slot duration must be finite and positive"));
        }
        if self.num_slots == 0 {
            return Err(InvalidTimeGrid("grid must contain at least one slot"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_boundaries() {
        let g = TimeGrid::minutes(10);
        assert_eq!(g.slot_seconds, 60.0);
        assert_eq!(g.slot_start(0), 0.0);
        assert_eq!(g.slot_end(0), 60.0);
        assert_eq!(g.slot_start(9), 540.0);
        assert_eq!(g.horizon(), 600.0);
    }

    #[test]
    fn slots_iterator() {
        let g = TimeGrid::minutes(3);
        let v: Vec<_> = g.slots().collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn validation() {
        assert!(TimeGrid::minutes(10).validate().is_ok());
        assert!(TimeGrid::new(0.0, 10).validate().is_err());
        assert!(TimeGrid::new(60.0, 0).validate().is_err());
        assert!(TimeGrid::new(f64::INFINITY, 1).validate().is_err());
    }
}
