//! The full-fidelity **P1** objective evaluator.
//!
//! Given a [`Scenario`] and a [`Schedule`], computes every task's harvested
//! energy and utility under the paper's formulation **P1**, including the
//! switching-delay semantics: a charger that rotates at the start of slot
//! `k` emits nothing during the first `ρ` fraction of the slot. This is the
//! single source of truth for "how good is this schedule" — all algorithms
//! (offline, online, baselines, exact) are scored through it.

use crate::{power, CoverageMap, Scenario, Schedule, Slot, UtilityFn};

/// Evaluation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Switching delay override; `None` uses the scenario's `ρ`.
    pub rho: Option<f64>,
    /// Only accumulate energy from slots strictly before this limit
    /// (`None` = all slots). The online scheduler uses this to compute what
    /// a frozen schedule prefix has already delivered.
    pub slot_limit: Option<Slot>,
    /// Only accumulate energy from slots at or after this start (`None` =
    /// from slot 0). Combined with `slot_limit` this selects a window; the
    /// localized online scheduler uses it to price the kept future plans of
    /// unaffected chargers.
    pub slot_start: Option<Slot>,
}

/// The result of evaluating a schedule.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Energy harvested by each task over its whole window, in joules.
    pub per_task_energy: Vec<f64>,
    /// `U(energy)` of each task (unweighted).
    pub per_task_utility: Vec<f64>,
    /// The paper's overall weighted charging utility `Σ w_j · U_j`.
    pub total_utility: f64,
    /// Orientation switches performed by each charger.
    pub switches_per_charger: Vec<usize>,
}

impl EvalReport {
    /// Total switches across all chargers.
    pub fn total_switches(&self) -> usize {
        self.switches_per_charger.iter().sum()
    }
}

/// Evaluates `schedule` on `scenario` under P1 (with switching delay).
///
/// Semantics, matching Section 3 of the paper:
///
/// * a charger starts unoriented (`θ_i(0) = Φ`): its first assigned slot
///   always pays the switching delay;
/// * within a slot whose orientation differs from the charger's previous
///   orientation, the charger emits only during the trailing `1 − ρ`
///   fraction;
/// * `None` (no assignment) slots emit nothing and leave the physical
///   orientation untouched;
/// * a task's energy accumulates only while it is active, and its utility is
///   `U` of the total.
pub fn evaluate(
    scenario: &Scenario,
    coverage: &CoverageMap,
    schedule: &Schedule,
    options: EvalOptions,
) -> EvalReport {
    let rho = options.rho.unwrap_or(scenario.rho);
    let m = scenario.num_tasks();
    let slot_seconds = scenario.grid.slot_seconds;
    let mut per_task_energy = vec![0.0; m];
    let mut switches_per_charger = vec![0usize; scenario.num_chargers()];

    for charger in &scenario.chargers {
        let i = charger.id.index();
        let candidates = coverage.tasks_of(charger.id);
        if candidates.is_empty() {
            // Still count switches for fidelity even if they are futile.
            switches_per_charger[i] = schedule.switch_count(charger.id);
            continue;
        }
        let mut prev = None;
        for (k, &orientation) in schedule.row(charger.id).iter().enumerate() {
            let Some(theta) = orientation else { continue };
            let switched = prev != Some(theta);
            if switched {
                switches_per_charger[i] += 1;
            }
            prev = Some(theta);
            if options.slot_limit.is_some_and(|limit| k >= limit)
                || options.slot_start.is_some_and(|start| k < start)
            {
                continue;
            }
            let effective = if switched { 1.0 - rho } else { 1.0 };
            if effective <= 0.0 {
                continue;
            }
            let half = scenario.params.charging_angle / 2.0;
            for cand in candidates {
                let task = &scenario.tasks[cand.task.index()];
                if !task.active_at(k) {
                    continue;
                }
                if cand.azimuth.within(theta, half) {
                    per_task_energy[cand.task.index()] += cand.power * slot_seconds * effective;
                }
            }
        }
    }

    finish_report(scenario, per_task_energy, switches_per_charger)
}

/// Evaluates under **HASTE-R** semantics: switching delay ignored (`ρ = 0`).
/// This is the objective the submodular machinery optimizes.
pub fn evaluate_relaxed(
    scenario: &Scenario,
    coverage: &CoverageMap,
    schedule: &Schedule,
) -> EvalReport {
    evaluate(
        scenario,
        coverage,
        schedule,
        EvalOptions {
            rho: Some(0.0),
            ..EvalOptions::default()
        },
    )
}

fn finish_report(
    scenario: &Scenario,
    per_task_energy: Vec<f64>,
    switches_per_charger: Vec<usize>,
) -> EvalReport {
    let mut total_utility = 0.0;
    let per_task_utility: Vec<f64> = scenario
        .tasks
        .iter()
        .zip(&per_task_energy)
        .map(|(task, &energy)| {
            let u = scenario.utility.utility(energy, task.required_energy);
            total_utility += task.weight * u;
            u
        })
        .collect();
    EvalReport {
        per_task_energy,
        per_task_utility,
        total_utility,
        switches_per_charger,
    }
}

/// Convenience: the power a single charger delivers to a single task per
/// fully-effective slot, going through the same code path as the evaluator.
pub fn slot_energy(scenario: &Scenario, charger_idx: usize, task_idx: usize) -> f64 {
    let charger = &scenario.chargers[charger_idx];
    let task = &scenario.tasks[task_idx];
    let theta = power::azimuth_to(charger, task);
    power::received_power(&scenario.params, charger, Some(theta), task) * scenario.grid.slot_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Charger, ChargingParams, Task, TimeGrid};
    use haste_geometry::{Angle, Vec2};

    /// One charger at the origin, one device 10 m east facing back west.
    fn scenario(rho: f64) -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(10),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![Task::new(
                0,
                Vec2::new(10.0, 0.0),
                Angle::from_degrees(180.0),
                0,
                10,
                10_000.0,
                1.0,
            )],
            rho,
            0,
        )
        .unwrap()
    }

    fn aimed_schedule(s: &Scenario) -> Schedule {
        let mut sched = Schedule::empty(1, s.grid.num_slots);
        for k in 0..s.grid.num_slots {
            sched.set(crate::ChargerId(0), k, Some(Angle::ZERO));
        }
        sched
    }

    #[test]
    fn steady_charging_accumulates_energy() {
        let s = scenario(0.0);
        let cov = CoverageMap::build(&s);
        let report = evaluate(&s, &cov, &aimed_schedule(&s), EvalOptions::default());
        // P = 10000/(10+40)^2 = 4 W; 10 slots × 60 s × 4 W = 2400 J.
        assert!((report.per_task_energy[0] - 2400.0).abs() < 1e-6);
        assert!((report.per_task_utility[0] - 0.24).abs() < 1e-9);
        assert!((report.total_utility - 0.24).abs() < 1e-9);
        assert_eq!(report.switches_per_charger, vec![1]);
    }

    #[test]
    fn switching_delay_costs_first_slot_fraction() {
        let rho = 0.25;
        let s = scenario(rho);
        let cov = CoverageMap::build(&s);
        let report = evaluate(&s, &cov, &aimed_schedule(&s), EvalOptions::default());
        // First slot delivers (1-ρ)·240 J, the other nine full 240 J.
        let expected = 240.0 * (1.0 - rho) + 9.0 * 240.0;
        assert!((report.per_task_energy[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn relaxed_evaluation_ignores_rho() {
        let s = scenario(0.5);
        let cov = CoverageMap::build(&s);
        let relaxed = evaluate_relaxed(&s, &cov, &aimed_schedule(&s));
        assert!((relaxed.per_task_energy[0] - 2400.0).abs() < 1e-6);
    }

    #[test]
    fn oscillating_schedule_pays_every_switch() {
        let s = scenario(0.5);
        let cov = CoverageMap::build(&s);
        let mut sched = Schedule::empty(1, s.grid.num_slots);
        for k in 0..s.grid.num_slots {
            // Alternate between covering (0°) and not covering (180°).
            let theta = if k % 2 == 0 { 0.0 } else { 180.0 };
            sched.set(crate::ChargerId(0), k, Some(Angle::from_degrees(theta)));
        }
        let report = evaluate(&s, &cov, &sched, EvalOptions::default());
        // Every covering slot is freshly switched: 5 slots × 240 J × 0.5.
        assert!((report.per_task_energy[0] - 5.0 * 120.0).abs() < 1e-6);
        assert_eq!(report.total_switches(), 10);
    }

    #[test]
    fn inactive_slots_harvest_nothing() {
        let mut s = scenario(0.0);
        s.tasks[0].release_slot = 5;
        s.tasks[0].end_slot = 8;
        let cov = CoverageMap::build(&s);
        let report = evaluate(&s, &cov, &aimed_schedule(&s), EvalOptions::default());
        assert!((report.per_task_energy[0] - 3.0 * 240.0).abs() < 1e-6);
    }

    #[test]
    fn utility_saturates_at_requirement() {
        let mut s = scenario(0.0);
        s.tasks[0].required_energy = 100.0; // far below the 2400 J harvested
        let cov = CoverageMap::build(&s);
        let report = evaluate(&s, &cov, &aimed_schedule(&s), EvalOptions::default());
        assert_eq!(report.per_task_utility[0], 1.0);
        assert_eq!(report.total_utility, 1.0);
    }

    #[test]
    fn none_slots_do_not_switch_or_charge() {
        let s = scenario(0.5);
        let cov = CoverageMap::build(&s);
        let mut sched = Schedule::empty(1, s.grid.num_slots);
        sched.set(crate::ChargerId(0), 2, Some(Angle::ZERO));
        sched.set(crate::ChargerId(0), 6, Some(Angle::ZERO));
        let report = evaluate(&s, &cov, &sched, EvalOptions::default());
        // Slot 2 pays the switch; slot 6 resumes the same orientation free.
        assert!((report.per_task_energy[0] - (120.0 + 240.0)).abs() < 1e-6);
        assert_eq!(report.total_switches(), 1);
    }

    #[test]
    fn slot_limit_truncates_energy_but_not_switches() {
        let s = scenario(0.0);
        let cov = CoverageMap::build(&s);
        let report = evaluate(
            &s,
            &cov,
            &aimed_schedule(&s),
            EvalOptions {
                rho: Some(0.0),
                slot_limit: Some(4),
                ..EvalOptions::default()
            },
        );
        assert!((report.per_task_energy[0] - 4.0 * 240.0).abs() < 1e-6);
        assert_eq!(report.total_switches(), 1);
    }

    #[test]
    fn slot_window_selects_energy_range() {
        let s = scenario(0.0);
        let cov = CoverageMap::build(&s);
        let report = evaluate(
            &s,
            &cov,
            &aimed_schedule(&s),
            EvalOptions {
                rho: Some(0.0),
                slot_limit: Some(7),
                slot_start: Some(3),
            },
        );
        assert!((report.per_task_energy[0] - 4.0 * 240.0).abs() < 1e-6);
    }

    #[test]
    fn slot_energy_helper_matches_model() {
        let s = scenario(0.0);
        assert!((slot_energy(&s, 0, 0) - 240.0).abs() < 1e-9);
    }
}
