//! Precomputed charger ↔ task chargeability.

use haste_geometry::Angle;

use crate::{power, ChargerId, Scenario, TaskId};

/// A task chargeable by a given charger, with the quantities the schedulers
/// need precomputed: the azimuth `ψ_ij` the charger must face, and the
/// range-only power `P_r(s_i, o_j)` it would deliver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateTask {
    /// The task's id.
    pub task: TaskId,
    /// Azimuth of the device from the charger.
    pub azimuth: Angle,
    /// `P_r(s_i, o_j)` in watts (positive by construction).
    pub power: f64,
}

/// For every charger, the set of tasks it can charge (the paper's `T_i`) and
/// the reverse index (for every task, the chargers that can reach it).
///
/// Chargeability is orientation-independent (distance and receiving-sector
/// tests only), so this map is computed once per scenario and reused by
/// dominant-set extraction, the objective oracles, and the neighbor graph of
/// the distributed algorithm.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    per_charger: Vec<Vec<CandidateTask>>,
    per_task: Vec<Vec<ChargerId>>,
}

impl CoverageMap {
    /// Builds the map for a scenario. `O(n · m)` pair tests.
    pub fn build(scenario: &Scenario) -> Self {
        Self::build_par(scenario, 1)
    }

    /// Like [`CoverageMap::build`], with the per-charger pair tests spread
    /// over `threads` workers. Chargers are independent rows of the map and
    /// each row is computed in full by one worker, so the result is
    /// identical to the sequential build for every thread count.
    pub fn build_par(scenario: &Scenario, threads: usize) -> Self {
        let m = scenario.num_tasks();
        let rows = haste_parallel::par_map(&scenario.chargers, threads, |_, charger| {
            scenario
                .tasks
                .iter()
                .filter(|task| power::chargeable(&scenario.params, charger, task))
                .map(|task| {
                    let d = charger.pos.distance(task.device_pos);
                    CandidateTask {
                        task: task.id,
                        azimuth: power::azimuth_to(charger, task),
                        power: power::range_power(&scenario.params, d)
                            * power::receiver_gain_factor(&scenario.params, charger, task),
                    }
                })
                .collect::<Vec<_>>()
        });
        // Reverse index, derived sequentially so charger ids stay sorted.
        let mut per_task = vec![Vec::new(); m];
        for (charger, row) in scenario.chargers.iter().zip(&rows) {
            for cand in row {
                per_task[cand.task.index()].push(charger.id);
            }
        }
        CoverageMap {
            per_charger: rows,
            per_task,
        }
    }

    /// Tasks chargeable by charger `i` (the paper's `T_i`).
    #[inline]
    pub fn tasks_of(&self, charger: ChargerId) -> &[CandidateTask] {
        &self.per_charger[charger.index()]
    }

    /// Chargers able to charge task `j`.
    #[inline]
    pub fn chargers_of(&self, task: TaskId) -> &[ChargerId] {
        &self.per_task[task.index()]
    }

    /// Number of chargers in the map.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.per_charger.len()
    }

    /// Number of tasks in the map.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.per_task.len()
    }

    /// Whether two chargers are neighbors in the paper's sense: they can
    /// both charge at least one common task.
    pub fn are_neighbors(&self, a: ChargerId, b: ChargerId) -> bool {
        if a == b {
            return false;
        }
        let (ta, tb) = (&self.per_charger[a.index()], &self.per_charger[b.index()]);
        // Candidate lists are sorted by task id by construction.
        let (mut ia, mut ib) = (0, 0);
        while ia < ta.len() && ib < tb.len() {
            match ta[ia].task.cmp(&tb[ib].task) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Charger, ChargingParams, Task, TimeGrid};
    use haste_geometry::Vec2;

    fn scenario() -> Scenario {
        // Two chargers west and east of two devices; devices face west, so
        // only the west charger can charge them. A third far-away charger
        // reaches nothing.
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(10),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(20.0, 0.0)),
                Charger::new(2, Vec2::new(500.0, 500.0)),
            ],
            vec![
                Task::new(
                    0,
                    Vec2::new(10.0, 0.0),
                    Angle::from_degrees(180.0),
                    0,
                    10,
                    1000.0,
                    1.0,
                ),
                Task::new(
                    1,
                    Vec2::new(10.0, 1.0),
                    Angle::from_degrees(180.0),
                    0,
                    10,
                    1000.0,
                    1.0,
                ),
            ],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn coverage_respects_receiving_sector() {
        let s = scenario();
        let map = CoverageMap::build(&s);
        assert_eq!(map.tasks_of(ChargerId(0)).len(), 2);
        assert_eq!(map.tasks_of(ChargerId(1)).len(), 0);
        assert_eq!(map.tasks_of(ChargerId(2)).len(), 0);
        assert_eq!(map.chargers_of(TaskId(0)), &[ChargerId(0)]);
    }

    #[test]
    fn candidate_fields_are_consistent() {
        let s = scenario();
        let map = CoverageMap::build(&s);
        let c = &map.tasks_of(ChargerId(0))[0];
        assert_eq!(c.task, TaskId(0));
        assert!((c.azimuth.degrees() - 0.0).abs() < 1e-9);
        assert!((c.power - 10_000.0 / 2500.0).abs() < 1e-9);
    }

    #[test]
    fn neighbor_relation() {
        // Put both chargers where they can reach task 0.
        let mut s = scenario();
        s.tasks[0].device_facing = Angle::from_degrees(0.0); // faces east charger
        let map = CoverageMap::build(&s);
        // Task 0 now reachable only from charger 1; task 1 still only from 0.
        assert!(!map.are_neighbors(ChargerId(0), ChargerId(1)));
        assert!(!map.are_neighbors(ChargerId(0), ChargerId(0)));

        // Device between the two and 120° receiving angle facing north-ish
        // wouldn't cover both; instead make it face halfway using a full
        // receiving circle.
        let mut s2 = scenario();
        s2.params.receiving_angle = std::f64::consts::TAU;
        let map2 = CoverageMap::build(&s2);
        assert!(map2.are_neighbors(ChargerId(0), ChargerId(1)));
        assert!(map2.are_neighbors(ChargerId(1), ChargerId(0)));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let s = scenario();
        let seq = CoverageMap::build(&s);
        let par = CoverageMap::build_par(&s, 4);
        assert_eq!(seq.per_charger, par.per_charger);
        assert_eq!(seq.per_task, par.per_task);
    }

    use haste_geometry::Angle;
}
