//! Domain model for **HASTE** — charging task scheduling for directional
//! wireless charger networks.
//!
//! This crate defines the objects of the paper's problem formulation
//! (Section 3):
//!
//! * [`Charger`] — a rotatable directional wireless charger,
//! * [`Task`] — a charging task `⟨o_j, φ_j, t_r, t_e, E_j⟩` with a weight,
//! * [`ChargingParams`] — the directional charging model constants
//!   (`α`, `β`, `D`, `A_s`, `A_o`),
//! * [`power`] — the charging power function `P_r` and coverage predicates,
//! * [`UtilityFn`] implementations — the linear-bounded utility `U` of
//!   Eq. (1) plus general concave extensions,
//! * [`TimeGrid`] — the discrete slot model (`T_s`, `K`),
//! * [`Scenario`] — a full problem instance (chargers + tasks + delays),
//! * [`CoverageMap`] — precomputed charger/task chargeability,
//! * [`Schedule`] — per-charger, per-slot orientations, and
//! * [`evaluate`] — the full-fidelity **P1** objective evaluator including
//!   switching-delay accounting.
//!
//! The algorithm crates (`haste-core`, `haste-distributed`) build on these
//! types; nothing here makes scheduling decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod error;
mod eval;
mod params;
mod partition;
mod scenario;
mod schedule;
mod task;
mod time;
mod utility;

pub mod emr;
pub mod io;
pub mod power;

pub use coverage::{CandidateTask, CoverageMap};
pub use error::ModelError;
pub use eval::{evaluate, evaluate_relaxed, slot_energy, EvalOptions, EvalReport};
pub use params::{ChargingParams, ReceiverGain};
pub use partition::{CellAssignment, CellRect, Partition, PartitionError, RoutingMap};
pub use scenario::{Scenario, UtilityModel};
pub use schedule::{Orientation, Schedule};
pub use task::{Charger, ChargerId, Task, TaskId};
pub use time::{Slot, TimeGrid};
pub use utility::{ConcavePower, LinearBounded, UtilityFn};
