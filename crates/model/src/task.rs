//! Chargers and charging tasks.

use haste_geometry::{Angle, Sector, Vec2};
use serde::{Deserialize, Serialize};

use crate::{ChargingParams, Slot};

/// Identifier of a charger (`s_i`). Indexes into `Scenario::chargers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ChargerId(pub u32);

/// Identifier of a charging task (`T_j`). Indexes into `Scenario::tasks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl ChargerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A static, rotatable directional wireless charger.
///
/// Its orientation is the decision variable of HASTE and therefore lives in
/// [`crate::Schedule`], not here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    /// Identifier; must equal the charger's index in the scenario.
    pub id: ChargerId,
    /// Position `s_i` in meters.
    pub pos: Vec2,
}

impl Charger {
    /// Creates a charger.
    pub fn new(id: u32, pos: Vec2) -> Self {
        Charger {
            id: ChargerId(id),
            pos,
        }
    }

    /// The charging sector of this charger when oriented at `theta`.
    pub fn charging_sector(&self, params: &ChargingParams, theta: Angle) -> Sector {
        Sector::new(self.pos, theta, params.charging_angle, params.radius)
    }
}

/// A charging task `T_j = ⟨o_j, φ_j, t_r, t_e, E_j⟩` plus its weight `w_j`.
///
/// Times are expressed in slots: the task is active during slots
/// `release_slot .. end_slot` (half-open), matching the paper's convention
/// that `t_r` falls at a slot start and `t_e` at a slot end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier; must equal the task's index in the scenario.
    pub id: TaskId,
    /// Position `o_j` of the rechargeable device, in meters.
    pub device_pos: Vec2,
    /// Orientation `φ_j` of the device's receiving sector.
    pub device_facing: Angle,
    /// First active slot (`t_r / T_s`).
    pub release_slot: Slot,
    /// One past the last active slot (`t_e / T_s`).
    pub end_slot: Slot,
    /// Required charging energy `E_j` in joules.
    pub required_energy: f64,
    /// Weight `w_j` in the overall utility.
    pub weight: f64,
}

impl Task {
    /// Creates a task active during `release_slot .. end_slot`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        device_pos: Vec2,
        device_facing: Angle,
        release_slot: Slot,
        end_slot: Slot,
        required_energy: f64,
        weight: f64,
    ) -> Self {
        Task {
            id: TaskId(id),
            device_pos,
            device_facing,
            release_slot,
            end_slot,
            required_energy,
            weight,
        }
    }

    /// Whether the task is active (can harvest energy) during slot `k`.
    #[inline]
    pub fn active_at(&self, k: Slot) -> bool {
        self.release_slot <= k && k < self.end_slot
    }

    /// Number of slots the task is active for.
    #[inline]
    pub fn duration_slots(&self) -> usize {
        self.end_slot - self.release_slot
    }

    /// The device's receiving sector.
    pub fn receiving_sector(&self, params: &ChargingParams) -> Sector {
        Sector::new(
            self.device_pos,
            self.device_facing,
            params.receiving_angle,
            params.radius,
        )
    }

    /// Validates the task fields.
    pub fn validate(&self, index: usize) -> Result<(), crate::ModelError> {
        use crate::ModelError::InvalidTask;
        if self.end_slot <= self.release_slot {
            return Err(InvalidTask {
                index,
                reason: "end slot must be after release slot",
            });
        }
        if !(self.required_energy.is_finite() && self.required_energy > 0.0) {
            return Err(InvalidTask {
                index,
                reason: "required energy must be finite and positive",
            });
        }
        if !(self.weight.is_finite() && self.weight >= 0.0) {
            return Err(InvalidTask {
                index,
                reason: "weight must be finite and non-negative",
            });
        }
        if !(self.device_pos.x.is_finite() && self.device_pos.y.is_finite()) {
            return Err(InvalidTask {
                index,
                reason: "device position must be finite",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(0, Vec2::new(1.0, 2.0), Angle::ZERO, 2, 5, 100.0, 1.0)
    }

    #[test]
    fn activity_window() {
        let t = task();
        assert!(!t.active_at(1));
        assert!(t.active_at(2));
        assert!(t.active_at(4));
        assert!(!t.active_at(5));
        assert_eq!(t.duration_slots(), 3);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut t = task();
        t.end_slot = 2;
        assert!(t.validate(0).is_err());
        let mut t = task();
        t.required_energy = 0.0;
        assert!(t.validate(0).is_err());
        let mut t = task();
        t.weight = -1.0;
        assert!(t.validate(0).is_err());
        let mut t = task();
        t.device_pos = Vec2::new(f64::NAN, 0.0);
        assert!(t.validate(0).is_err());
        assert!(task().validate(0).is_ok());
    }

    #[test]
    fn sectors_use_params() {
        let params = ChargingParams::simulation_default();
        let t = task();
        let rs = t.receiving_sector(&params);
        assert_eq!(rs.apex, t.device_pos);
        assert_eq!(rs.opening, params.receiving_angle);
        assert_eq!(rs.radius, params.radius);

        let c = Charger::new(0, Vec2::ZERO);
        let cs = c.charging_sector(&params, Angle::from_degrees(90.0));
        assert_eq!(cs.apex, Vec2::ZERO);
        assert_eq!(cs.opening, params.charging_angle);
    }

    #[test]
    fn id_indexing() {
        assert_eq!(ChargerId(7).index(), 7);
        assert_eq!(TaskId(3).index(), 3);
    }
}
