//! Full problem instances.

use serde::{Deserialize, Serialize};

use crate::{
    Charger, ChargingParams, ConcavePower, LinearBounded, ModelError, Task, TimeGrid, UtilityFn,
};

/// Serializable choice of charging utility function.
///
/// Algorithms are generic over [`UtilityFn`]; scenarios carry this enum so
/// instances round-trip through serde.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum UtilityModel {
    /// The paper's linear-bounded utility (Eq. 1).
    #[default]
    LinearBounded,
    /// The concave-power extension with the given exponent in `(0, 1]`.
    ConcavePower(f64),
}

impl UtilityFn for UtilityModel {
    #[inline]
    fn utility(&self, energy: f64, required: f64) -> f64 {
        match *self {
            UtilityModel::LinearBounded => LinearBounded.utility(energy, required),
            UtilityModel::ConcavePower(p) => ConcavePower { exponent: p }.utility(energy, required),
        }
    }

    #[inline]
    fn marginal(&self, energy: f64, delta: f64, required: f64) -> f64 {
        match *self {
            UtilityModel::LinearBounded => LinearBounded.marginal(energy, delta, required),
            UtilityModel::ConcavePower(p) => {
                ConcavePower { exponent: p }.marginal(energy, delta, required)
            }
        }
    }
}

/// A complete HASTE problem instance.
///
/// Holds everything the offline and online schedulers need: the charging
/// model constants, the slotted time grid, the chargers and tasks, the
/// switching delay `ρ` and (for the online scenario) the rescheduling delay
/// `τ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Charging model constants.
    pub params: ChargingParams,
    /// Discrete time grid (must cover every task's window).
    pub grid: TimeGrid,
    /// The chargers `s_1 … s_n`; `chargers[i].id == i`.
    pub chargers: Vec<Charger>,
    /// The tasks `T_1 … T_m`; `tasks[j].id == j`.
    pub tasks: Vec<Task>,
    /// Switching delay `ρ ∈ [0, 1]`, as a fraction of a slot.
    pub rho: f64,
    /// Rescheduling delay `τ` in whole slots (online scenario only).
    pub tau: usize,
    /// Utility function applied to every task.
    #[serde(default)]
    pub utility: UtilityModel,
}

impl Scenario {
    /// Creates a scenario and [`validate`](Scenario::validate)s it.
    pub fn new(
        params: ChargingParams,
        grid: TimeGrid,
        chargers: Vec<Charger>,
        tasks: Vec<Task>,
        rho: f64,
        tau: usize,
    ) -> Result<Self, ModelError> {
        let s = Scenario {
            params,
            grid,
            chargers,
            tasks,
            rho,
            tau,
            utility: UtilityModel::LinearBounded,
        };
        s.validate()?;
        Ok(s)
    }

    /// Number of chargers `n`.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.chargers.len()
    }

    /// Number of tasks `m`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Sum of all task weights — the maximum attainable overall utility.
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Overall utility normalized by total weight would be `1.0` when every
    /// task is fully charged; this returns the latest end slot of any task,
    /// i.e. the number of slots the schedulers must decide.
    pub fn active_horizon(&self) -> usize {
        self.tasks.iter().map(|t| t.end_slot).max().unwrap_or(0)
    }

    /// Checks every structural invariant of the instance.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.params.validate()?;
        self.grid.validate()?;
        if !(self.rho.is_finite() && (0.0..=1.0).contains(&self.rho)) {
            return Err(ModelError::InvalidDelay("rho must be within [0, 1]"));
        }
        for (i, c) in self.chargers.iter().enumerate() {
            if c.id.index() != i {
                return Err(ModelError::DuplicateId("charger ids must equal indices"));
            }
            if !(c.pos.x.is_finite() && c.pos.y.is_finite()) {
                return Err(ModelError::InvalidCharger {
                    index: i,
                    reason: "position must be finite",
                });
            }
        }
        for (j, t) in self.tasks.iter().enumerate() {
            if t.id.index() != j {
                return Err(ModelError::DuplicateId("task ids must equal indices"));
            }
            t.validate(j)?;
            if t.end_slot > self.grid.num_slots {
                return Err(ModelError::InvalidTask {
                    index: j,
                    reason: "task window exceeds the time grid",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::{Angle, Vec2};

    fn tiny() -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(10),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![Task::new(
                0,
                Vec2::new(5.0, 0.0),
                Angle::from_degrees(180.0),
                0,
                10,
                1000.0,
                1.0,
            )],
            1.0 / 12.0,
            1,
        )
        .unwrap()
    }

    #[test]
    fn valid_scenario_builds() {
        let s = tiny();
        assert_eq!(s.num_chargers(), 1);
        assert_eq!(s.num_tasks(), 1);
        assert_eq!(s.total_weight(), 1.0);
        assert_eq!(s.active_horizon(), 10);
    }

    #[test]
    fn rejects_task_beyond_grid() {
        let mut s = tiny();
        s.tasks[0].end_slot = 11;
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidTask { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_bad_rho() {
        let mut s = tiny();
        s.rho = 1.5;
        assert!(s.validate().is_err());
        s.rho = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_misnumbered_ids() {
        let mut s = tiny();
        s.chargers[0].id = crate::ChargerId(5);
        assert!(s.validate().is_err());
        let mut s = tiny();
        s.tasks[0].id = crate::TaskId(2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn utility_model_dispatch() {
        let lin = UtilityModel::LinearBounded;
        assert_eq!(lin.utility(50.0, 100.0), 0.5);
        let con = UtilityModel::ConcavePower(0.5);
        assert!((con.utility(25.0, 100.0) - 0.5).abs() < 1e-12);
        assert!((lin.marginal(50.0, 25.0, 100.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn active_horizon_of_empty_scenario() {
        let mut s = tiny();
        s.tasks.clear();
        assert_eq!(s.active_horizon(), 0);
        assert_eq!(s.total_weight(), 0.0);
    }
}
