//! The directional charging power model `P_r` (Section 3.1 of the paper).
//!
//! The model splits naturally into an orientation-*independent* part — is the
//! device in range, and is the charger inside the device's receiving sector —
//! and an orientation-*dependent* part — is the device inside the charger's
//! charging sector for the current orientation `θ_i`. The schedulers exploit
//! this split: the independent part is precomputed once per scenario in a
//! [`crate::CoverageMap`], and only the cheap angular test runs in the inner
//! loops.

use haste_geometry::{Angle, Vec2};

use crate::{Charger, ChargingParams, Task};

/// The range-only power term `P_r(s_i, o_j) = α/(‖s_i o_j‖+β)²` for
/// `‖s_i o_j‖ ≤ D`, else `0` — the paper's orientation-free shorthand used
/// throughout HASTE-R.
#[inline]
pub fn range_power(params: &ChargingParams, distance: f64) -> f64 {
    if distance <= params.radius + 1e-12 {
        let denom = distance + params.beta;
        params.alpha / (denom * denom)
    } else {
        0.0
    }
}

/// Orientation-independent chargeability: the device of `task` is within
/// range of `charger` **and** the charger lies inside the device's receiving
/// sector. When this holds, the charger can deliver
/// [`range_power`] to the task whenever its own sector covers the device.
pub fn chargeable(params: &ChargingParams, charger: &Charger, task: &Task) -> bool {
    let d = charger.pos.distance(task.device_pos);
    if d > params.radius + 1e-12 {
        return false;
    }
    // A co-located pair is always mutually covered.
    if d <= f64::EPSILON {
        return true;
    }
    let to_charger = (charger.pos - task.device_pos).azimuth();
    to_charger.within(task.device_facing, params.receiving_angle / 2.0)
}

/// Orientation-dependent coverage: whether a charger at `charger_pos`
/// oriented at `theta` covers a device at `device_pos` *angularly* (range
/// must be checked separately, or once via [`chargeable`]).
#[inline]
pub fn covers_direction(
    params: &ChargingParams,
    charger_pos: Vec2,
    theta: Angle,
    device_pos: Vec2,
) -> bool {
    let d = device_pos - charger_pos;
    if d.norm() <= f64::EPSILON {
        return true;
    }
    d.azimuth().within(theta, params.charging_angle / 2.0)
}

/// The device-side anisotropy factor for energy from `charger` arriving at
/// the device of `task` (1.0 under the paper's isotropic model). Defined
/// only up to the mutual-coverage test: callers should gate on
/// [`chargeable`].
pub fn receiver_gain_factor(params: &ChargingParams, charger: &Charger, task: &Task) -> f64 {
    let d = charger.pos - task.device_pos;
    if d.norm() <= f64::EPSILON {
        return 1.0;
    }
    let offset = d.azimuth().distance(task.device_facing).radians();
    params.receiver_gain.factor(offset)
}

/// The azimuth `ψ_ij` of the device of `task` as seen from `charger` — the
/// direction a charger must (approximately) face to cover the task.
#[inline]
pub fn azimuth_to(charger: &Charger, task: &Task) -> Angle {
    (task.device_pos - charger.pos).azimuth()
}

/// The full charging power function `P_r(s_i, θ_i, o_j, φ_j)` of the paper:
/// positive iff the pair is mutually covered, `α/(d+β)²` in that case.
///
/// `theta = None` encodes `Φ` (the charger is switching / unoriented) and
/// yields zero.
pub fn received_power(
    params: &ChargingParams,
    charger: &Charger,
    theta: Option<Angle>,
    task: &Task,
) -> f64 {
    let Some(theta) = theta else { return 0.0 };
    if !chargeable(params, charger, task) {
        return 0.0;
    }
    if !covers_direction(params, charger.pos, theta, task.device_pos) {
        return 0.0;
    }
    range_power(params, charger.pos.distance(task.device_pos))
        * receiver_gain_factor(params, charger, task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::Vec2;

    fn params() -> ChargingParams {
        ChargingParams::simulation_default()
    }

    fn task_at(pos: Vec2, facing_deg: f64) -> Task {
        Task::new(0, pos, Angle::from_degrees(facing_deg), 0, 10, 1000.0, 1.0)
    }

    #[test]
    fn range_power_decays_and_cuts_off() {
        let p = params();
        let p0 = range_power(&p, 0.0);
        let p10 = range_power(&p, 10.0);
        let p20 = range_power(&p, 20.0);
        assert!(p0 > p10 && p10 > p20);
        assert!((p0 - 10_000.0 / 1600.0).abs() < 1e-9);
        assert_eq!(range_power(&p, 20.5), 0.0);
    }

    #[test]
    fn mutual_coverage_required() {
        let p = params();
        let charger = Charger::new(0, Vec2::ZERO);
        // Device 10 m east, facing back west toward the charger: chargeable.
        let facing_charger = task_at(Vec2::new(10.0, 0.0), 180.0);
        assert!(chargeable(&p, &charger, &facing_charger));
        // Device facing away from the charger: not chargeable.
        let facing_away = task_at(Vec2::new(10.0, 0.0), 0.0);
        assert!(!chargeable(&p, &charger, &facing_away));
        // Out of range even when facing back.
        let far = task_at(Vec2::new(25.0, 0.0), 180.0);
        assert!(!chargeable(&p, &charger, &far));
    }

    #[test]
    fn received_power_needs_both_sectors() {
        let p = params();
        let charger = Charger::new(0, Vec2::ZERO);
        let task = task_at(Vec2::new(10.0, 0.0), 180.0);
        // Charger faces the device: full power.
        let pw = received_power(&p, &charger, Some(Angle::ZERO), &task);
        assert!((pw - 10_000.0 / 2500.0).abs() < 1e-9);
        // Charger faces away: zero.
        assert_eq!(
            received_power(&p, &charger, Some(Angle::from_degrees(90.0)), &task),
            0.0
        );
        // Switching (Φ): zero.
        assert_eq!(received_power(&p, &charger, None, &task), 0.0);
    }

    #[test]
    fn coverage_boundary_is_inclusive() {
        let p = params(); // A_s = 60°, half-angle 30°
        let charger = Charger::new(0, Vec2::ZERO);
        let on_edge = Vec2::unit(Angle::from_degrees(30.0)) * 5.0;
        assert!(covers_direction(&p, charger.pos, Angle::ZERO, on_edge));
        let outside = Vec2::unit(Angle::from_degrees(30.5)) * 5.0;
        assert!(!covers_direction(&p, charger.pos, Angle::ZERO, outside));
    }

    #[test]
    fn azimuth_to_points_at_device() {
        let charger = Charger::new(0, Vec2::new(1.0, 1.0));
        let task = task_at(Vec2::new(1.0, 5.0), 0.0);
        assert!((azimuth_to(&charger, &task).degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_receiver_gain_rolls_off() {
        use crate::ReceiverGain;
        let mut p = params();
        p.receiving_angle = std::f64::consts::PI; // 180° sector
        p.receiver_gain = ReceiverGain::Cosine { exponent: 1.0 };
        let charger = Charger::new(0, Vec2::ZERO);
        // Device east of the charger. Facing dead-on (west): full gain.
        let head_on = task_at(Vec2::new(10.0, 0.0), 180.0);
        let p0 = received_power(&p, &charger, Some(Angle::ZERO), &head_on);
        // Facing 60° off: gain cos(60°) = 0.5.
        let oblique = task_at(Vec2::new(10.0, 0.0), 120.0);
        let p60 = received_power(&p, &charger, Some(Angle::ZERO), &oblique);
        assert!(p0 > 0.0);
        assert!((p60 / p0 - 0.5).abs() < 1e-9, "ratio {}", p60 / p0);
        // Uniform model keeps both equal.
        p.receiver_gain = ReceiverGain::Uniform;
        let u0 = received_power(&p, &charger, Some(Angle::ZERO), &head_on);
        let u60 = received_power(&p, &charger, Some(Angle::ZERO), &oblique);
        assert!((u0 - u60).abs() < 1e-12);
    }

    #[test]
    fn gain_factor_exponent_zero_is_uniform() {
        use crate::ReceiverGain;
        let g = ReceiverGain::Cosine { exponent: 0.0 };
        assert_eq!(g.factor(0.5), 1.0);
        assert_eq!(ReceiverGain::Uniform.factor(1.2), 1.0);
    }

    #[test]
    fn colocated_pair_is_chargeable() {
        let p = params();
        let charger = Charger::new(0, Vec2::new(3.0, 3.0));
        let task = task_at(Vec2::new(3.0, 3.0), 45.0);
        assert!(chargeable(&p, &charger, &task));
        let pw = received_power(&p, &charger, Some(Angle::ZERO), &task);
        assert!(pw > 0.0);
    }
}
