//! Charging utility functions.
//!
//! The paper's analysis (submodularity of HASTE-R, the switching/rescheduling
//! loss bounds) relies only on the utility being **normalized, non-decreasing
//! and concave** in harvested energy. Eq. (1) uses the linear-bounded
//! instance; the paper notes the results extend to general concave functions,
//! so the trait below is the extension point and [`ConcavePower`] is one such
//! extension.

use serde::{Deserialize, Serialize};

/// A normalized, monotone, concave charging utility `U : energy ↦ [0, 1]`.
///
/// Implementations must satisfy, for the submodularity of the HASTE-R
/// objective to hold (Lemma 4.2):
///
/// * `utility(0, e) = 0` (normalized),
/// * non-decreasing in harvested energy,
/// * concave in harvested energy.
///
/// `haste-submodular`'s validators are run against every implementation in
/// this crate's tests.
pub trait UtilityFn: Send + Sync {
    /// Utility of having harvested `energy` joules toward a requirement of
    /// `required` joules.
    fn utility(&self, energy: f64, required: f64) -> f64;

    /// Marginal utility of adding `delta` joules on top of `energy`.
    ///
    /// Provided for convenience; the default just takes the difference, and
    /// implementations may override it with something cheaper.
    fn marginal(&self, energy: f64, delta: f64, required: f64) -> f64 {
        self.utility(energy + delta, required) - self.utility(energy, required)
    }
}

/// The paper's Eq. (1): `U(x) = x / E_j` for `x ≤ E_j`, else `1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearBounded;

impl UtilityFn for LinearBounded {
    #[inline]
    fn utility(&self, energy: f64, required: f64) -> f64 {
        debug_assert!(required > 0.0);
        (energy / required).clamp(0.0, 1.0)
    }

    #[inline]
    fn marginal(&self, energy: f64, delta: f64, required: f64) -> f64 {
        debug_assert!(required > 0.0);
        let before = (energy / required).min(1.0);
        let after = ((energy + delta) / required).min(1.0);
        (after - before).max(0.0)
    }
}

/// A general concave extension: `U(x) = min((x / E_j)^p, 1)` with exponent
/// `p ∈ (0, 1]`.
///
/// `p = 1` coincides with [`LinearBounded`]; smaller exponents reward the
/// first joules more, modeling devices whose marginal value of energy decays
/// (e.g. battery health). Used by the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcavePower {
    /// Exponent `p ∈ (0, 1]`.
    pub exponent: f64,
}

impl ConcavePower {
    /// Creates the utility; panics if `p` is outside `(0, 1]` (a convexity
    /// bug would silently break every approximation guarantee downstream).
    pub fn new(exponent: f64) -> Self {
        assert!(
            exponent > 0.0 && exponent <= 1.0,
            "ConcavePower exponent must be in (0, 1], got {exponent}"
        );
        ConcavePower { exponent }
    }
}

impl UtilityFn for ConcavePower {
    #[inline]
    fn utility(&self, energy: f64, required: f64) -> f64 {
        debug_assert!(required > 0.0);
        let ratio = (energy / required).max(0.0);
        ratio.powf(self.exponent).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bounded_shape() {
        let u = LinearBounded;
        assert_eq!(u.utility(0.0, 100.0), 0.0);
        assert_eq!(u.utility(50.0, 100.0), 0.5);
        assert_eq!(u.utility(100.0, 100.0), 1.0);
        assert_eq!(u.utility(200.0, 100.0), 1.0);
    }

    #[test]
    fn linear_bounded_marginal_matches_difference() {
        let u = LinearBounded;
        for &(e, d) in &[(0.0, 10.0), (90.0, 20.0), (150.0, 5.0), (99.0, 1.0)] {
            let m = u.marginal(e, d, 100.0);
            let diff = u.utility(e + d, 100.0) - u.utility(e, 100.0);
            assert!((m - diff).abs() < 1e-12, "e={e} d={d}");
        }
    }

    #[test]
    fn concave_power_reduces_to_linear_at_p1() {
        let u = ConcavePower::new(1.0);
        for &e in &[0.0, 25.0, 50.0, 100.0, 150.0] {
            assert!((u.utility(e, 100.0) - LinearBounded.utility(e, 100.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn concavity_numerically() {
        // U((a+b)/2) ≥ (U(a)+U(b))/2 for concave U.
        for u in [&ConcavePower::new(0.5) as &dyn UtilityFn, &LinearBounded] {
            for &(a, b) in &[(0.0, 100.0), (10.0, 60.0), (50.0, 200.0)] {
                let mid = u.utility((a + b) / 2.0, 100.0);
                let avg = (u.utility(a, 100.0) + u.utility(b, 100.0)) / 2.0;
                assert!(mid >= avg - 1e-12);
            }
        }
    }

    #[test]
    fn monotone_and_bounded() {
        for u in [&ConcavePower::new(0.3) as &dyn UtilityFn, &LinearBounded] {
            let mut prev = 0.0;
            for step in 0..50 {
                let v = u.utility(step as f64 * 5.0, 100.0);
                assert!(v >= prev - 1e-12);
                assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn concave_power_rejects_convex_exponent() {
        let _ = ConcavePower::new(1.5);
    }
}
