//! Error type for scenario validation.

use std::fmt;

/// Errors raised when validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A charging-model constant is out of range.
    InvalidParams(&'static str),
    /// A task is malformed (window, energy or weight).
    InvalidTask {
        /// Index of the offending task in the scenario.
        index: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A charger is malformed (non-finite position).
    InvalidCharger {
        /// Index of the offending charger in the scenario.
        index: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The time grid is malformed.
    InvalidTimeGrid(&'static str),
    /// The scenario-level delays are out of range.
    InvalidDelay(&'static str),
    /// Duplicate identifier in a scenario.
    DuplicateId(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParams(r) => write!(f, "invalid charging parameters: {r}"),
            ModelError::InvalidTask { index, reason } => {
                write!(f, "invalid task #{index}: {reason}")
            }
            ModelError::InvalidCharger { index, reason } => {
                write!(f, "invalid charger #{index}: {reason}")
            }
            ModelError::InvalidTimeGrid(r) => write!(f, "invalid time grid: {r}"),
            ModelError::InvalidDelay(r) => write!(f, "invalid delay: {r}"),
            ModelError::DuplicateId(r) => write!(f, "duplicate id: {r}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::InvalidTask {
            index: 3,
            reason: "end before release",
        };
        assert!(e.to_string().contains("task #3"));
        assert!(ModelError::InvalidParams("x").to_string().contains("x"));
        assert!(ModelError::InvalidTimeGrid("y").to_string().contains("y"));
    }
}
