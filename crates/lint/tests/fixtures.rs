//! Fixture tests: each `tests/fixtures/` file must trigger exactly the
//! rule it is named for (and the clean fixtures none), so every rule in
//! the catalog is demonstrably live and a regression in any matcher fails
//! here rather than silently passing dirty trees in CI.

use haste_lint::{
    check_concurrency, check_errcode_docs, check_metrics_docs, check_metrics_schema,
    check_vendor_allowlist, scan_source, Finding, ManifestSet,
};

/// Loads a fixture by file name.
macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// Asserts every finding is `rule` and there is at least one.
fn assert_only_rule(findings: &[Finding], rule: &str) {
    assert!(
        !findings.is_empty(),
        "expected {rule} findings, fixture came back clean"
    );
    for finding in findings {
        assert_eq!(finding.rule, rule, "expected only {rule}, got {finding}");
    }
}

#[test]
fn d1_fixture_triggers_exactly_d1() {
    let findings = scan_source(
        "crates/model/src/fixture.rs",
        fixture!("d1_hash_collections.rs"),
    );
    assert_only_rule(&findings, "D1");
    assert_eq!(findings.len(), 3, "{findings:?}"); // use, signature, constructor
}

#[test]
fn d2_fixture_triggers_exactly_d2() {
    let findings = scan_source("crates/core/src/fixture.rs", fixture!("d2_wallclock.rs"));
    assert_only_rule(&findings, "D2");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn d3_fixture_triggers_exactly_d3() {
    // D3 is path-scoped to the serialization files, so the fixture is
    // presented as the model io module.
    let findings = scan_source("crates/model/src/io.rs", fixture!("d3_float_format.rs"));
    assert_only_rule(&findings, "D3");
    assert_eq!(findings.len(), 2, "{findings:?}"); // {:?} and {:.
}

#[test]
fn d3_does_not_apply_outside_serialization_paths() {
    let findings = scan_source(
        "crates/model/src/coverage.rs",
        fixture!("d3_float_format.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn p1_fixture_triggers_exactly_p1() {
    let findings = scan_source(
        "crates/service/src/fixture.rs",
        fixture!("p1_service_panic.rs"),
    );
    assert_only_rule(&findings, "P1");
    // One literal index, one unwrap; the test-tail unwrap is exempt.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn p1_does_not_apply_outside_the_service_crate() {
    let findings = scan_source(
        "crates/model/src/fixture.rs",
        fixture!("p1_service_panic.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn s0_fixture_triggers_exactly_s0() {
    let findings = scan_source(
        "crates/model/src/fixture.rs",
        fixture!("s0_bad_suppression.rs"),
    );
    assert_only_rule(&findings, "S0");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn s1_fixture_triggers_exactly_s1() {
    let findings = scan_source(
        "crates/model/src/fixture.rs",
        fixture!("s1_unused_suppression.rs"),
    );
    assert_only_rule(&findings, "S1");
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn clean_fixture_is_clean_under_every_scope() {
    for path in [
        "crates/model/src/io.rs",       // D1/D2/D3 scope
        "crates/service/src/server.rs", // D1/D2/D3/P1 scope
        "crates/core/src/fixture.rs",   // D1/D2 scope
    ] {
        let findings = scan_source(path, fixture!("clean.rs"));
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn suppressed_fixture_is_clean() {
    let findings = scan_source(
        "crates/core/src/fixture.rs",
        fixture!("suppressed_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn c1_fixture_triggers_exactly_c1_both_directions() {
    let findings = check_errcode_docs(
        "crates/service/src/proto.rs",
        fixture!("c1_proto.rs"),
        "docs/service_protocol.md",
        fixture!("c1_doc.md"),
    );
    assert_only_rule(&findings, "C1");
    assert_eq!(findings.len(), 2, "{findings:?}");
    // `oops` is implemented but undocumented: the finding points at the code.
    assert!(findings
        .iter()
        .any(|f| f.file.ends_with("proto.rs") && f.message.contains("`oops`")));
    // `ghost` is documented but unimplemented: the finding points at the doc.
    assert!(findings
        .iter()
        .any(|f| f.file.ends_with(".md") && f.message.contains("`ghost`")));
}

#[test]
fn c2_fixture_triggers_exactly_c2() {
    let findings = check_metrics_docs(
        "crates/service/src/server.rs",
        fixture!("c2_server.rs"),
        "docs/service_protocol.md",
        fixture!("c1_doc.md"),
    );
    assert_only_rule(&findings, "C2");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("`mystery`"));
}

#[test]
fn c2_schema_fixtures_trigger_exactly_c2() {
    let findings = check_metrics_schema(
        "crates/metrics/src/catalog.rs",
        fixture!("c2_schema_catalog.rs"),
        "docs/service_protocol.md",
        fixture!("c2_schema_doc.md"),
    );
    assert_only_rule(&findings, "C2");
    assert_eq!(findings.len(), 3, "{findings:?}");
    // `haste_engine_mystery_total` is in the catalog but not the table.
    assert!(findings
        .iter()
        .any(|f| f.file.ends_with("catalog.rs")
            && f.message.contains("`haste_engine_mystery_total`")));
    // The duration histogram is documented with the wrong label.
    assert!(findings.iter().any(|f| f
        .message
        .contains("label `opcode` in the catalog but `cell`")));
    // `haste_router_ghost_total` is documented but has no entry.
    assert!(findings
        .iter()
        .any(|f| f.file.ends_with(".md") && f.message.contains("`haste_router_ghost_total`")));
}

#[test]
fn c3_fixtures_trigger_exactly_c3() {
    let findings = check_vendor_allowlist(&ManifestSet {
        root: (
            "Cargo.toml".to_string(),
            fixture!("c3_workspace.toml").to_string(),
        ),
        members: vec![(
            "crates/model/Cargo.toml".to_string(),
            fixture!("c3_member.toml").to_string(),
        )],
        vendor_dirs: vec!["rand".to_string()],
    });
    assert_only_rule(&findings, "C3");
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("`serde_json`")));
    assert!(findings.iter().any(|f| f.message.contains("`regex`")));
}

// --- concurrency rules (L1/L2/L3) -----------------------------------------

/// Runs the concurrency-rule path over one in-memory fixture file. The
/// path places the fixture inside the analyzed scope
/// (`crates/service/src/`).
fn conc(content: &str) -> Vec<Finding> {
    check_concurrency(&[(
        "crates/service/src/fixture.rs".to_string(),
        content.to_string(),
    )])
}

#[test]
fn l1_fixture_triggers_exactly_l1() {
    let findings = conc(fixture!("l1_lock_cycle.rs"));
    assert_only_rule(&findings, "L1");
    assert_eq!(findings.len(), 1, "{findings:?}"); // one cycle, reported once
    let message = &findings[0].message;
    assert!(
        message.contains("left") && message.contains("right"),
        "cycle names both locks: {message}"
    );
    assert!(
        message.contains("fixture.rs:"),
        "cycle cites file:line per edge: {message}"
    );
}

#[test]
fn l2_fixture_triggers_exactly_l2() {
    let findings = conc(fixture!("l2_blocking_under_lock.rs"));
    assert_only_rule(&findings, "L2");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("sleep"), "{findings:?}");
}

#[test]
fn l2_suppression_absorbs_and_counts_as_used() {
    // The audited allow both silences the L2 and registers as used, so
    // no S1 fires either.
    let findings = conc(fixture!("l2_suppressed.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l3_fixture_triggers_exactly_l3() {
    let findings = conc(fixture!("l3_undeadlined_stream.rs"));
    assert_only_rule(&findings, "L3");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("deadline") || findings[0].message.contains("timeout"),
        "{findings:?}"
    );
}

#[test]
fn guard_dropped_fixture_is_clean() {
    // Scope-exit and explicit-drop guard deaths, plus a deadlined
    // stream: the false-positive guards for all three L rules.
    let findings = conc(fixture!("l_clean_guard_dropped.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn stale_l_allow_triggers_s1() {
    let findings = conc(fixture!("s1_stale_l_allow.rs"));
    assert_only_rule(&findings, "S1");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("L2"), "{findings:?}");
}
