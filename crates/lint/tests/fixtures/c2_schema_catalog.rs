//! C2 fixture: a metric catalog that disagrees with the doc's schema
//! table in three ways — an undocumented family, a label mismatch, and
//! (via the doc fixture) a documented family with no entry.

pub const CATALOG: &[MetricSpec] = &[
    counter("haste_service_requests_total", "opcode", "", "Requests by opcode."),
    histogram("haste_service_request_duration_us", "opcode", "Request latency."),
    counter("haste_engine_mystery_total", "", "", "Not in the doc."),
];
