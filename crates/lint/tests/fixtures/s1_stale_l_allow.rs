//! S1 fixture for the concurrency rules: an `allow(L2)` that absorbs
//! nothing — the sweep must know the L rule names and flag it stale.

pub fn quiet() -> u32 {
    // haste-lint: allow(L2) — fixture: nothing here blocks
    let value = 1 + 1;
    value
}
