// Fixture: must trigger exactly rule S0 — the suppression below names no
// reason, so it does not parse (and there is no violation for it to hide).
fn noop() {}
// haste-lint: allow(D2)
