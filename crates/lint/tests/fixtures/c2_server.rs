// Fixture: a Request::Metrics arm emitting a key (`mystery`) the doc
// fixture does not document — must trigger exactly rule C2, pointing here.
fn metrics_reply(engine: &Engine) -> Reply {
    match request {
        Request::Metrics => {
            let mut payload = String::new();
            for (key, value) in [
                ("clock", engine.clock().to_string()),
                ("greedy_us", engine.greedy_us().to_string()),
                ("mystery", engine.mystery().to_string()),
            ] {
                payload.push_str(key);
                payload.push(' ');
                payload.push_str(&value);
                payload.push('\n');
            }
            Reply::Data(payload)
        }
    }
}
