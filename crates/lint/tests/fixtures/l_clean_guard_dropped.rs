//! Clean concurrency fixture: every blocking call happens after its
//! guard is dead — by scope exit or by explicit `drop` — and the stream
//! gets its deadline at acquisition. None of L1/L2/L3 may fire.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

pub struct Cell {
    pub inner: Mutex<u32>,
}

impl Cell {
    pub fn read_then_sleep(&self, pause: Duration) -> u32 {
        let value = {
            let guard = self.inner.lock().unwrap();
            *guard
        };
        std::thread::sleep(pause);
        value
    }

    pub fn drop_then_sleep(&self, pause: Duration) {
        let guard = self.inner.lock().unwrap();
        drop(guard);
        std::thread::sleep(pause);
    }
}

pub fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    Ok(stream)
}
