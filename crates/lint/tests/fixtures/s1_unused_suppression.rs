// Fixture: must trigger exactly rule S1 — a well-formed suppression with
// nothing left to suppress.
// haste-lint: allow(D1) — the hash map this excused was removed long ago
fn noop() {}
