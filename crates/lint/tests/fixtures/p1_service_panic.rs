// Fixture: must trigger exactly rule P1 (scanned under a service-crate path).
fn parse_fields(rest: &[&str]) -> (String, String) {
    let first = rest[0].to_string();
    let second = rest.get(1).copied().unwrap_or_default().parse().unwrap();
    (first, second)
}

#[cfg(test)]
mod tests {
    // Panics in the test tail are exempt.
    #[test]
    fn fine_here() {
        super::parse_fields(&["a", "b"]).0.parse::<u32>().unwrap();
    }
}
