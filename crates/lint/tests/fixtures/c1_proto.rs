// Fixture: an ErrCode::as_str with one wire token (`oops`) the doc fixture
// does not document — must trigger exactly rule C1, pointing at this file.
pub enum ErrCode {
    BadRequest,
    Overload,
    Oops,
}

impl ErrCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::Overload => "overload",
            ErrCode::Oops => "oops",
        }
    }
}
