// Fixture: must trigger exactly rule D2 (scanned under a solver-crate path).
fn decide_by_deadline() -> bool {
    let started = std::time::Instant::now();
    started.elapsed().as_millis() < 5
}
