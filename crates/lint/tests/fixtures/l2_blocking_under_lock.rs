//! L2 fixture: a blocking call while a mutex guard is live.

use std::sync::Mutex;
use std::time::Duration;

pub struct Cell {
    pub inner: Mutex<u32>,
}

impl Cell {
    pub fn stall(&self, pause: Duration) {
        let guard = self.inner.lock().unwrap();
        std::thread::sleep(pause);
        drop(guard);
    }
}
