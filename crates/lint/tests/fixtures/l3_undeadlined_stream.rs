//! L3 fixture: a `TcpStream::connect` with no deadline call anywhere in
//! the acquiring function or its direct callees.

use std::io::Write;
use std::net::TcpStream;

pub fn dial(addr: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"ping")?;
    Ok(())
}
