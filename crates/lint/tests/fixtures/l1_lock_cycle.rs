//! L1 fixture: two entry points acquire the same two locks in opposite
//! orders, with each second acquisition hidden behind a helper call —
//! the cycle only appears once lock sets propagate across functions.

use std::sync::Mutex;

pub struct Pair {
    pub left: Mutex<u32>,
    pub right: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let held = self.left.lock().unwrap();
        self.take_right();
        drop(held);
    }

    fn take_right(&self) {
        let _r = self.right.lock().unwrap();
    }

    pub fn backward(&self) {
        let held = self.right.lock().unwrap();
        self.take_left();
        drop(held);
    }

    fn take_left(&self) {
        let _l = self.left.lock().unwrap();
    }
}
