// Fixture: must trigger no rule at all, under any scanned path.
use std::collections::BTreeMap;

/// Mentions of HashMap, Instant::now, or .unwrap() in comments are fine.
fn deterministic_index(keys: &[u32]) -> BTreeMap<u32, usize> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect()
}

fn format_float(x: f64) -> String {
    format!("value {x}")
}

fn first_or_zero(fields: &[&str]) -> u32 {
    match fields {
        [first, ..] => first.parse().unwrap_or(0),
        [] => 0,
    }
}
