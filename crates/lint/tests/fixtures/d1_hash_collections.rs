// Fixture: must trigger exactly rule D1 (scanned under a solver-crate path).
use std::collections::HashMap;

fn charger_index() -> HashMap<u32, usize> {
    HashMap::new()
}
