//! L2 fixture, suppressed: the same blocking-under-lock site as
//! `l2_blocking_under_lock.rs` with an audited in-source allow — must
//! come back clean, and the suppression must count as used (no S1).

use std::sync::Mutex;
use std::time::Duration;

pub struct Cell {
    pub inner: Mutex<u32>,
}

impl Cell {
    pub fn stall(&self, pause: Duration) {
        let guard = self.inner.lock().unwrap();
        // haste-lint: allow(L2) — fixture: the pause is bounded and the guard must cover it
        std::thread::sleep(pause);
        drop(guard);
    }
}
