// Fixture: must trigger exactly rule D3 (scanned under a serialization path).
fn snapshot_line(x: f64) -> String {
    format!("charger {:?} {:.6}", x, x)
}
