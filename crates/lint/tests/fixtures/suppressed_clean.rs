// Fixture: violations fully covered by valid suppressions — no findings.
fn timed_phase() -> std::time::Duration {
    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let start = std::time::Instant::now();
    start.elapsed()
}

fn inline_form() -> std::time::Duration {
    let t = std::time::Instant::now(); // haste-lint: allow(D2) — metrics timing site
    t.elapsed()
}
