//! SARIF shape test: renders a report and validates the document against
//! the SARIF 2.1.0 structure with a minimal JSON parser written here (the
//! crate stays zero-dependency). This is the guarantee that the output is
//! real JSON with the fields SARIF viewers and code-scanning UIs require,
//! not merely a string that looks right in a diff.

use std::collections::BTreeMap;

use haste_lint::{catalog, sarif, CheckReport, Finding, SuppressedFinding};

// --- a minimal JSON model + recursive-descent parser ----------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    Str(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Object(map) => map
                .get(key)
                .unwrap_or_else(|| panic!("missing key `{key}`")),
            other => panic!("expected object for key `{key}`, got {other:?}"),
        }
    }

    fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            other => panic!("expected object for key `{key}`, got {other:?}"),
        }
    }

    fn array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn string(&self) -> &str {
        match self {
            Json::Str(text) => text,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn number(&self) -> f64 {
        match self {
            Json::Number(value) => *value,
            other => panic!("expected number, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Json {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value();
    parser.skip_ws();
    assert_eq!(
        parser.pos,
        parser.bytes.len(),
        "trailing garbage after JSON"
    );
    value
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&ch),
            "expected `{}` at byte {}",
            ch as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Json {
        self.skip_ws();
        assert!(
            self.bytes[self.pos..].starts_with(word.as_bytes()),
            "expected `{word}` at byte {}",
            self.pos
        );
        self.pos += word.len();
        value
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Object(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            let value = self.value();
            assert!(
                map.insert(key.clone(), value).is_none(),
                "duplicate key `{key}`"
            );
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    break;
                }
                other => panic!("expected `,` or `}}`, got `{}`", other as char),
            }
        }
        Json::Object(map)
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Array(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    break;
                }
                other => panic!("expected `,` or `]`, got `{}`", other as char),
            }
        }
        Json::Array(items)
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).expect("unterminated string") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).expect("dangling escape") {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .expect("\\u escape is ascii hex");
                            let code = u32::from_str_radix(hex, 16).expect("\\u escape parses");
                            out.push(char::from_u32(code).expect("valid scalar"));
                            self.pos += 4;
                        }
                        other => panic!("unknown escape `\\{}`", *other as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf-8");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8 number");
        Json::Number(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number `{text}`")),
        )
    }
}

// --- the shape assertions --------------------------------------------------

fn finding(file: &str, line: usize, rule: &'static str, message: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message: message.to_string(),
    }
}

#[test]
fn sarif_document_has_the_2_1_0_shape() {
    let report = CheckReport {
        findings: vec![
            finding(
                "crates/service/src/a.rs",
                12,
                "L2",
                "blocking `sleep` under `core`",
            ),
            finding("docs/service_protocol.md", 0, "C1", "code drift \"quoted\""),
        ],
        suppressed: vec![SuppressedFinding {
            finding: finding(
                "crates/service/src/b.rs",
                7,
                "L3",
                "stream without deadline",
            ),
            justification: "audited — bounded elsewhere".to_string(),
        }],
    };
    let baselined = vec![finding("crates/service/src/c.rs", 3, "L1", "cycle")];
    let document = sarif::render(&report, &baselined);
    let root = parse_json(&document);

    assert_eq!(root.get("version").string(), "2.1.0");
    assert!(root.get("$schema").string().contains("sarif-2.1.0"));

    let runs = root.get("runs").array();
    assert_eq!(runs.len(), 1);
    let run = &runs[0];

    // tool.driver: name + the full rule catalog with descriptions.
    let driver = run.get("tool").get("driver");
    assert_eq!(driver.get("name").string(), "haste-lint");
    let rules = driver.get("rules").array();
    assert_eq!(rules.len(), catalog::RULES.len());
    for (entry, info) in rules.iter().zip(catalog::RULES) {
        assert_eq!(entry.get("id").string(), info.id);
        assert_eq!(entry.get("name").string(), info.name);
        assert_eq!(
            entry.get("shortDescription").get("text").string(),
            info.summary
        );
        assert!(!entry.get("fullDescription").get("text").string().is_empty());
    }

    // results: two live + one inSource-suppressed + one external.
    let results = run.get("results").array();
    assert_eq!(results.len(), 4);
    for result in results {
        let rule_id = result.get("ruleId").string();
        let index = result.get("ruleIndex").number() as usize;
        assert_eq!(
            catalog::RULES[index].id,
            rule_id,
            "ruleIndex points at ruleId"
        );
        assert_eq!(result.get("level").string(), "error");
        assert!(!result.get("message").get("text").string().is_empty());
        let locations = result.get("locations").array();
        assert_eq!(locations.len(), 1);
        let physical = locations[0].get("physicalLocation");
        let uri = physical.get("artifactLocation").get("uri").string();
        assert!(
            !uri.is_empty() && !uri.contains('\\'),
            "relative / uri: {uri}"
        );
    }

    // The line-12 L2 carries a region; the line-0 C1 must not.
    let l2 = results
        .iter()
        .find(|r| r.get("ruleId").string() == "L2")
        .expect("L2 result present");
    let region = l2.get("locations").array()[0]
        .get("physicalLocation")
        .get("region");
    assert_eq!(region.get("startLine").number() as usize, 12);
    let c1 = results
        .iter()
        .find(|r| r.get("ruleId").string() == "C1")
        .expect("C1 result present");
    assert!(c1.get("locations").array()[0]
        .get("physicalLocation")
        .opt("region")
        .is_none());

    // Suppression markers: inSource with the written justification for
    // the allow-comment, external for the baseline hit, none on live.
    let l3 = results
        .iter()
        .find(|r| r.get("ruleId").string() == "L3")
        .expect("suppressed L3 present");
    let suppressions = l3.get("suppressions").array();
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].get("kind").string(), "inSource");
    assert_eq!(
        suppressions[0].get("justification").string(),
        "audited — bounded elsewhere"
    );
    let l1 = results
        .iter()
        .find(|r| r.get("ruleId").string() == "L1")
        .expect("baselined L1 present");
    assert_eq!(
        l1.get("suppressions").array()[0].get("kind").string(),
        "external"
    );
    assert!(l2.opt("suppressions").is_none(), "live findings carry none");
}

#[test]
fn sarif_escaping_survives_a_parse_round_trip() {
    let nasty = "quote \" backslash \\ newline \n tab \t control \u{1} unicode é🦀";
    let report = CheckReport {
        findings: vec![finding("crates/service/src/a.rs", 1, "L2", nasty)],
        suppressed: Vec::new(),
    };
    let document = sarif::render(&report, &[]);
    let root = parse_json(&document);
    let results = root.get("runs").array()[0].get("results").array();
    assert_eq!(results[0].get("message").get("text").string(), nasty);
}
