//! The real tree must be lint-clean: `cargo test` enforces the same
//! invariant CI's `cargo run -p haste-lint -- check` does, so a violation
//! anywhere in the workspace fails tier-1 rather than only the lint job.

use std::path::Path;

use haste_lint::{find_workspace_root, run_check};

#[test]
fn the_workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/lint sits inside the workspace");
    let findings = run_check(&root);
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn an_introduced_violation_is_detected_end_to_end() {
    // Synthetic mini-workspace in a temp dir: run_check must walk it and
    // surface the planted D1.
    let dir = std::env::temp_dir().join(format!("haste-lint-selfcheck-{}", std::process::id()));
    let src = dir.join("crates/model/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "use std::collections::HashMap;\npub fn m() -> HashMap<u32, u32> { HashMap::new() }\n",
    )
    .unwrap();

    // The contract files are absent, so C1 unreadable-file findings are
    // expected alongside the planted D1s; count only the latter.
    let findings = run_check(&dir);
    let d1 = findings.iter().filter(|f| f.rule == "D1").count();
    assert_eq!(d1, 2, "{findings:?}"); // the use line and the fn line

    std::fs::remove_dir_all(&dir).ok();
}
