//! Property tests of the lint tokenizer: on arbitrary concatenations of
//! tricky source fragments (escaped quotes, string continuations, nested
//! block comments, multi-byte characters), every token's byte offsets
//! must slice back to its text, tokens must stay ordered and disjoint,
//! and the recorded 1-based line must equal the newline count before the
//! token — the invariant every L-rule diagnostic location rests on.

use haste_lint::parse::tokenize;
use proptest::collection;
use proptest::prelude::*;

/// Fragment alphabet, biased toward the lexer's hard cases. The
/// `"cont\\\n..."` entry is the escaped-newline string continuation that
/// once drifted line numbers by the continuation count.
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "ident",
    "x1",
    "_y",
    "Mutex",
    "self",
    ".",
    "::",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    "->",
    "=",
    "&",
    "'a",
    "'static",
    "0",
    "42",
    "0x1f",
    "1.5e3",
    " ",
    "\n",
    "\t",
    "\n\n",
    "\"plain\"",
    "\"esc \\\" quote\"",
    "\"tail\\\\\"",
    "\"multi\nline\"",
    "\"cont\\\n    inued\"",
    "'c'",
    "'\\n'",
    "'\\''",
    "b'x'",
    "// line comment\n",
    "/* block */",
    "/* nested /* block */ */",
    "/* multi\nline */",
    "é",
    "émoji🦀",
    "b\"bytes\"",
    "r\"raw\"",
    "r#\"raw # hash\"#",
    "#",
    "[",
    "]",
    "<",
    ">",
    "!",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn token_offsets_and_lines_round_trip(
        indices in collection::vec(0usize..FRAGMENTS.len(), 0..60)
    ) {
        let src: String = indices.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = tokenize(&src);
        let mut prev_end = 0;
        for tok in &tokens {
            // Byte offsets slice back to exactly the token text.
            prop_assert_eq!(&src[tok.start..tok.end], tok.text.as_str());
            // Tokens arrive in order and never overlap.
            prop_assert!(tok.start >= prev_end, "token {:?} overlaps", tok.text);
            prev_end = tok.end;
            // The recorded line is 1 + the newlines before the token,
            // whether those newlines sat in whitespace, comments, or
            // multi-line / continuation string literals.
            let line = src[..tok.start].matches('\n').count() + 1;
            prop_assert_eq!(
                tok.line, line,
                "token {:?} at bytes {}..{}", tok.text, tok.start, tok.end
            );
        }
    }
}
