//! SARIF 2.1.0 rendering for a [`CheckReport`].
//!
//! The document is assembled by hand (the crate has no JSON dependency):
//! one `run`, the rule catalog as `tool.driver.rules`, and one `result`
//! per finding. Suppressed findings are emitted too, carrying a
//! `suppressions` entry — `inSource` for `// haste-lint: allow(...)`
//! absorptions (with the written justification), `external` for
//! baseline-accepted findings — so SARIF viewers show the full picture
//! while CI gates only on un-suppressed results.

use crate::catalog;
use crate::{CheckReport, Finding};

/// How a suppressed result got suppressed, for the `suppressions` array.
enum Suppression<'a> {
    /// `// haste-lint: allow(...)` with its written justification.
    InSource(&'a str),
    /// Accepted by the `--baseline` file.
    External,
}

/// Renders the report as a complete SARIF 2.1.0 document.
///
/// `baselined` are findings absorbed by `--baseline` (not in
/// `report.findings`), reported as externally-suppressed results.
pub fn render(report: &CheckReport, baselined: &[Finding]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    push_tool(&mut out);
    out.push_str("      \"results\": [");
    let mut first = true;
    for finding in &report.findings {
        push_result(&mut out, &mut first, finding, None);
    }
    for suppressed in &report.suppressed {
        push_result(
            &mut out,
            &mut first,
            &suppressed.finding,
            Some(Suppression::InSource(&suppressed.justification)),
        );
    }
    for finding in baselined {
        push_result(&mut out, &mut first, finding, Some(Suppression::External));
    }
    if !first {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn push_tool(out: &mut String) {
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"haste-lint\",\n");
    out.push_str("          \"informationUri\": \"docs/lints.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (index, info) in catalog::RULES.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": {},\n", json_str(info.id)));
        out.push_str(&format!(
            "              \"name\": {},\n",
            json_str(info.name)
        ));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            json_str(info.summary)
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": {} }}\n",
            json_str(info.rationale)
        ));
        out.push_str("            }");
        if index + 1 < catalog::RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
}

fn push_result(
    out: &mut String,
    first: &mut bool,
    finding: &Finding,
    suppression: Option<Suppression<'_>>,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n        {\n");
    out.push_str(&format!(
        "          \"ruleId\": {},\n",
        json_str(finding.rule)
    ));
    if let Some(index) = catalog::RULES.iter().position(|r| r.id == finding.rule) {
        out.push_str(&format!("          \"ruleIndex\": {index},\n"));
    }
    out.push_str("          \"level\": \"error\",\n");
    out.push_str(&format!(
        "          \"message\": {{ \"text\": {} }},\n",
        json_str(&finding.message)
    ));
    match suppression {
        Some(Suppression::InSource(justification)) => {
            out.push_str(&format!(
                "          \"suppressions\": [ {{ \"kind\": \"inSource\", \
                 \"justification\": {} }} ],\n",
                json_str(justification)
            ));
        }
        Some(Suppression::External) => {
            out.push_str(
                "          \"suppressions\": [ { \"kind\": \"external\", \
                 \"justification\": \"accepted by the committed lint baseline\" } ],\n",
            );
        }
        None => {}
    }
    out.push_str("          \"locations\": [\n            {\n");
    out.push_str("              \"physicalLocation\": {\n");
    out.push_str(&format!(
        "                \"artifactLocation\": {{ \"uri\": {} }}",
        json_str(&finding.file)
    ));
    if finding.line > 0 {
        out.push_str(&format!(
            ",\n                \"region\": {{ \"startLine\": {} }}\n",
            finding.line
        ));
    } else {
        out.push('\n');
    }
    out.push_str("              }\n            }\n          ]\n        }");
}

/// JSON string literal with the mandatory escapes.
fn json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuppressedFinding;

    fn finding(file: &str, line: usize, rule: &'static str, message: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: message.to_string(),
        }
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_str("em — dash"), "\"em — dash\"");
    }

    #[test]
    fn renders_findings_and_suppressions() {
        let report = CheckReport {
            findings: vec![finding("crates/x/src/a.rs", 7, "L2", "blocking \"call\"")],
            suppressed: vec![SuppressedFinding {
                finding: finding("crates/x/src/b.rs", 3, "L3", "no deadline"),
                justification: "audited".to_string(),
            }],
        };
        let baselined = vec![finding("crates/x/src/c.rs", 0, "C1", "drift")];
        let doc = render(&report, &baselined);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"L2\""));
        assert!(doc.contains("\"startLine\": 7"));
        assert!(doc.contains("blocking \\\"call\\\""));
        assert!(doc.contains("\"kind\": \"inSource\""));
        assert!(doc.contains("\"justification\": \"audited\""));
        assert!(doc.contains("\"kind\": \"external\""));
        // The line-0 C1 finding has no region.
        let c1 = doc.find("crates/x/src/c.rs").expect("c.rs result present");
        assert!(!doc[c1..].contains("startLine"));
        // Every catalog rule is listed once under the driver.
        for info in catalog::RULES {
            assert!(doc.contains(&format!("\"id\": \"{}\"", info.id)));
        }
    }

    #[test]
    fn empty_report_is_still_a_document() {
        let doc = render(&CheckReport::default(), &[]);
        assert!(doc.contains("\"results\": []"));
        assert!(doc.contains("\"name\": \"haste-lint\""));
    }
}
