//! Line/token-level scanning of `.rs` sources: the D (determinism) and
//! P (panic-safety) rules, plus the suppression machinery (S rules).
//!
//! The scanner is deliberately syntactic — no parsing, no type information.
//! Each line is split into a code part and a comment part (tracking block
//! comments and string literals across the line), rules match tokens in the
//! code part, and suppressions live in the comment part. False positives
//! are expected to be rare and carry an escape hatch: a scoped
//! `// haste-lint: allow(<rule>) — <reason>` comment.

use crate::{catalog, Finding};

/// One parsed suppression comment.
#[derive(Debug)]
struct Suppression {
    /// 1-based line of the comment.
    line: usize,
    /// Upper-cased rule ids this suppression names.
    rules: Vec<&'static str>,
    /// `allow-file` (whole file) vs `allow` (this line or the next).
    file_scope: bool,
    /// The written justification after the rule list.
    reason: String,
    /// Set once the suppression absorbs at least one finding.
    used: bool,
}

/// A raw (pre-suppression) rule hit.
struct Hit {
    line: usize,
    rule: &'static str,
    message: String,
}

/// A finding absorbed by a suppression comment, with its justification —
/// SARIF output reports these as `suppressed` results.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SuppressedFinding {
    pub finding: Finding,
    pub justification: String,
}

/// The full result of scanning one file: surviving findings plus the
/// suppressed ones (for SARIF's suppression status).
#[derive(Debug, Default)]
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<SuppressedFinding>,
}

/// Scans one source file. `path` is the workspace-relative path with `/`
/// separators — rule scoping keys off it, so fixture tests can present
/// synthetic content under any path they like.
pub fn scan_source(path: &str, content: &str) -> Vec<Finding> {
    scan_source_extra(path, content, &[])
}

/// [`scan_source`] with externally-computed hits (the cross-file
/// concurrency rules) merged in *before* suppression absorption, so one
/// `allow(L2)` comment both silences the hit and counts as used for S1.
pub fn scan_source_extra(path: &str, content: &str, extra: &[Finding]) -> Vec<Finding> {
    scan_source_report(path, content, extra).findings
}

/// The full scan pipeline: parse suppressions, run the per-line rules,
/// merge `extra` hits, absorb suppressions (recording justifications),
/// and emit S1 for unused suppressions.
pub fn scan_source_report(path: &str, content: &str, extra: &[Finding]) -> ScanReport {
    let lines = split_lines(content);
    let mut suppressions = Vec::new();
    let mut report = ScanReport::default();

    for line in &lines {
        if let Some(comment) = &line.comment {
            if comment.contains("haste-lint:") {
                match parse_suppression(comment) {
                    Ok((rules, file_scope, reason)) => suppressions.push(Suppression {
                        line: line.number,
                        rules,
                        file_scope,
                        reason,
                        used: false,
                    }),
                    Err(reason) => report.findings.push(Finding {
                        file: path.to_string(),
                        line: line.number,
                        rule: "S0",
                        message: reason,
                    }),
                }
            }
        }
    }

    // P1 exempts everything from the first `#[cfg(test)]` on: by workspace
    // convention test modules sit at the end of the file.
    let test_tail_start = lines
        .iter()
        .find(|l| l.code.trim() == "#[cfg(test)]")
        .map_or(usize::MAX, |l| l.number);

    let mut hits = Vec::new();
    for line in &lines {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        if in_d_scope(path) {
            rule_d1(code, line.number, &mut hits);
            rule_d2(code, line.number, &mut hits);
        }
        if in_d3_scope(path) {
            rule_d3(code, line.number, &mut hits);
        }
        if in_p1_scope(path) && line.number < test_tail_start {
            rule_p1(code, line.number, &mut hits);
        }
    }
    for f in extra {
        hits.push(Hit {
            line: f.line,
            rule: f.rule,
            message: f.message.clone(),
        });
    }

    for hit in hits {
        let mut justification = None;
        for s in suppressions.iter_mut() {
            let applies = s.rules.contains(&hit.rule)
                && (s.file_scope || s.line == hit.line || s.line + 1 == hit.line);
            if applies {
                s.used = true;
                if justification.is_none() {
                    justification = Some(s.reason.clone());
                }
            }
        }
        let finding = Finding {
            file: path.to_string(),
            line: hit.line,
            rule: hit.rule,
            message: hit.message,
        };
        match justification {
            Some(justification) => report.suppressed.push(SuppressedFinding {
                finding,
                justification,
            }),
            None => report.findings.push(finding),
        }
    }

    for s in &suppressions {
        if !s.used {
            report.findings.push(Finding {
                file: path.to_string(),
                line: s.line,
                rule: "S1",
                message: format!(
                    "suppression for {} matched no finding; delete the stale comment",
                    s.rules.join(", ")
                ),
            });
        }
    }

    report.findings.sort();
    report.suppressed.sort();
    report
}

// ----------------------------------------------------------------------
// Rule scopes
// ----------------------------------------------------------------------

/// Paths exempt from every source rule: measurement harnesses whose whole
/// point is wall-clock latency, and the linter itself (its rule tables
/// spell the forbidden tokens).
fn exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("crates/lint/")
        || path == "crates/service/src/loadgen.rs"
}

fn in_d_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.ends_with(".rs") && !exempt(path)
}

/// The serialization paths whose float formatting is the determinism
/// anchor. `framing.rs` belongs here even though its floats cross as raw
/// IEEE-754 bits: every *text* byte it emits (`OP_REPLY` bodies, batch-ack
/// messages) must come from the same Display paths as the text protocol.
const D3_FILES: &[&str] = &[
    "crates/model/src/io.rs",
    "crates/distributed/src/engine.rs",
    "crates/service/src/proto.rs",
    "crates/service/src/server.rs",
    "crates/service/src/router.rs",
    "crates/service/src/framing.rs",
    "crates/service/src/wal.rs",
];

fn in_d3_scope(path: &str) -> bool {
    D3_FILES.contains(&path)
}

fn in_p1_scope(path: &str) -> bool {
    path.starts_with("crates/service/src/") && path.ends_with(".rs") && !exempt(path)
}

// ----------------------------------------------------------------------
// Rules
// ----------------------------------------------------------------------

fn rule_d1(code: &str, line: usize, hits: &mut Vec<Hit>) {
    for token in ["HashMap", "HashSet"] {
        if code.contains(token) {
            hits.push(Hit {
                line,
                rule: "D1",
                message: format!(
                    "`{token}` iterates in RandomState order; use the BTree equivalent \
                     (bit-identical output is the determinism contract)"
                ),
            });
        }
    }
}

fn rule_d2(code: &str, line: usize, hits: &mut Vec<Hit>) {
    for token in ["Instant::now", "SystemTime"] {
        if code.contains(token) {
            hits.push(Hit {
                line,
                rule: "D2",
                message: format!(
                    "`{token}` reads the wall clock; only SolverMetrics phase timing may \
                     (suppress with the metrics-timing reason if this is such a site)"
                ),
            });
        }
    }
}

fn rule_d3(code: &str, line: usize, hits: &mut Vec<Hit>) {
    for token in ["{:?}", "{:#?}", "{:.", "{:e}", "{:E}"] {
        if code.contains(token) {
            hits.push(Hit {
                line,
                rule: "D3",
                message: format!(
                    "`{token}` formatting in a serialization path; floats must use bare \
                     `{{}}` Display (shortest roundtrip is the snapshot anchor)"
                ),
            });
        }
    }
}

fn rule_p1(code: &str, line: usize, hits: &mut Vec<Hit>) {
    for token in [
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ] {
        if code.contains(token) {
            hits.push(Hit {
                line,
                rule: "P1",
                message: format!(
                    "`{token}` can panic in a request path; reply `ERR <code>` instead \
                     (match/`?` on the failure)"
                ),
            });
        }
    }
    for index in literal_indexes(code) {
        hits.push(Hit {
            line,
            rule: "P1",
            message: format!(
                "literal slice index `[{index}]` panics when out of bounds; destructure \
                 with a slice pattern or use `.get({index})`"
            ),
        });
    }
}

/// Finds `expr[<integer literal>]` occurrences: a `[` directly after an
/// identifier character, `)`, or `]`, whose bracketed content is all digits
/// (underscores allowed). Identifier indexes (`v[i]`) are out of scope —
/// the common request-path hazard is positional field access.
fn literal_indexes(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexable =
            prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexable {
            continue;
        }
        let Some(close) = code[i + 1..].find(']') else {
            continue;
        };
        let inner = &code[i + 1..i + 1 + close];
        if !inner.is_empty() && inner.bytes().all(|c| c.is_ascii_digit() || c == b'_') {
            out.push(inner.to_string());
        }
    }
    out
}

// ----------------------------------------------------------------------
// Suppression parsing
// ----------------------------------------------------------------------

/// Parses the body of a `haste-lint:` comment into (rule ids, file_scope,
/// reason). Errors are S0 messages.
fn parse_suppression(comment: &str) -> Result<(Vec<&'static str>, bool, String), String> {
    let Some(rest) = comment.split("haste-lint:").nth(1) else {
        return Err("unparsable haste-lint comment".to_string());
    };
    let rest = rest.trim_start();
    let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return Err("haste-lint comment must be `allow(<rules>) — <reason>` or \
             `allow-file(<rules>) — <reason>`"
            .to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list in haste-lint suppression".to_string());
    };
    let mut rules = Vec::new();
    for key in rest[..close].split(',') {
        let key = key.trim();
        match catalog::rule(key) {
            Some(info) => rules.push(info.id),
            None => return Err(format!("unknown rule `{key}` in haste-lint suppression")),
        }
    }
    if rules.is_empty() {
        return Err("empty rule list in haste-lint suppression".to_string());
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['-', '—', '–'])
        .trim();
    if reason.is_empty() {
        return Err(
            "haste-lint suppression needs a reason: `allow(<rules>) — <reason>`".to_string(),
        );
    }
    Ok((rules, file_scope, reason.to_string()))
}

// ----------------------------------------------------------------------
// Code / comment splitting
// ----------------------------------------------------------------------

/// One physical line, split into code and (line-)comment parts.
struct Line {
    /// 1-based line number.
    number: usize,
    /// The non-comment part (string literals kept; block-comment content
    /// blanked out).
    code: String,
    /// The `//...` comment text, if any.
    comment: Option<String>,
}

/// Splits a file into [`Line`]s, tracking block comments (nesting included)
/// and string literals across the whole file. Heuristic, not a lexer: raw
/// strings and char literals containing `"` can misclassify a tail — every
/// rule match still has the suppression escape hatch.
fn split_lines(content: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut block_depth = 0usize;
    for (idx, raw) in content.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = None;
        let bytes = raw.as_bytes();
        let mut i = 0;
        let mut in_string = false;
        while i < bytes.len() {
            let b = bytes[i];
            if block_depth > 0 {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    block_depth -= 1;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                if b == b'\\' {
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    in_string = false;
                }
                code.push(b as char);
                i += 1;
                continue;
            }
            match b {
                b'"' => {
                    in_string = true;
                    code.push('"');
                    i += 1;
                }
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    comment = Some(raw[i + 2..].to_string());
                    break;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    block_depth += 1;
                    i += 2;
                }
                _ => {
                    // Push the full UTF-8 scalar so multi-byte characters
                    // survive the round-trip.
                    let ch_len = utf8_len(b);
                    code.push_str(&raw[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        lines.push(Line {
            number: idx + 1,
            code,
            comment,
        });
    }
    lines
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn comment_mentions_do_not_fire() {
        let src = "// a doc mention of Instant::now and .unwrap() is fine\nlet x = 1;\n";
        assert!(scan_source("crates/service/src/server.rs", src).is_empty());
    }

    #[test]
    fn block_comments_are_blanked() {
        let src = "/* Instant::now()\n   .unwrap() */\nlet x = 1;\n";
        assert!(scan_source("crates/service/src/server.rs", src).is_empty());
    }

    #[test]
    fn string_content_still_matches() {
        // Token rules intentionally look inside string literals: a format
        // string carrying `{:?}` is exactly the D3 hazard.
        let src = "let s = format!(\"{:?}\", x);\n";
        assert_eq!(
            rules_of(&scan_source("crates/model/src/io.rs", src)),
            ["D3"]
        );
    }

    #[test]
    fn line_suppression_applies_to_same_and_next_line() {
        let inline = "let t = Instant::now(); // haste-lint: allow(D2) — metrics timing\n";
        assert!(scan_source("crates/core/src/x.rs", inline).is_empty());
        let above = "// haste-lint: allow(D2) — metrics timing\nlet t = Instant::now();\n";
        assert!(scan_source("crates/core/src/x.rs", above).is_empty());
    }

    #[test]
    fn suppression_does_not_reach_two_lines_down() {
        let src =
            "// haste-lint: allow(D2) — metrics timing\nlet a = 1;\nlet t = Instant::now();\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        // The D2 hit survives and the suppression is now unused (findings
        // sort by line, so the line-1 S1 comes first).
        assert_eq!(rules_of(&findings), ["S1", "D2"]);
    }

    #[test]
    fn file_scope_suppression_covers_everything() {
        let src = "// haste-lint: allow-file(D2) — bench-only harness file\n\
                   let a = Instant::now();\nlet b = Instant::now();\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn bad_suppressions_are_s0_and_suppress_nothing() {
        for comment in [
            "// haste-lint: allow(D2)\n",        // no reason
            "// haste-lint: allow(Z9) — nope\n", // unknown rule
            "// haste-lint: allow() — nope\n",   // empty list
            "// haste-lint: deny(D2) — nope\n",  // unknown verb
            "// haste-lint: allow(D2 — nope\n",  // unclosed
        ] {
            let src = format!("{comment}let t = Instant::now();\n");
            let findings = scan_source("crates/core/src/x.rs", &src);
            assert_eq!(rules_of(&findings), ["S0", "D2"], "for {comment:?}");
        }
    }

    #[test]
    fn suppression_accepts_slugs_and_lists() {
        let src = "// haste-lint: allow(wallclock, D1) — test helper uses both\n\
                   let t = (Instant::now(), HashSet::new());\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn p1_exempts_the_test_tail() {
        let src = "fn f(v: &[u32]) -> u32 { v[0] }\n#[cfg(test)]\nmod tests {\n\
                   fn g(v: &[u32]) -> u32 { v[1].checked_add(1).unwrap() }\n}\n";
        let findings = scan_source("crates/service/src/server.rs", src);
        assert_eq!(rules_of(&findings), ["P1"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn literal_index_detection() {
        assert_eq!(
            literal_indexes("rest[0] + x[12] + y[1_000]"),
            ["0", "12", "1_000"]
        );
        assert!(literal_indexes("v[i] + [0u8; 4] + #[cfg(test)]").is_empty());
        assert_eq!(literal_indexes("f(x)[3]"), ["3"]);
    }

    #[test]
    fn d3_and_p1_cover_the_framing_module() {
        // Binary framing emits reply text too — its formatting is as much
        // a determinism anchor as the text protocol's, and it runs inside
        // request handling, so both scopes must include it.
        let src = "let s = format!(\"{:?}\", x).unwrap();\n";
        assert_eq!(
            rules_of(&scan_source("crates/service/src/framing.rs", src)),
            ["D3", "P1"]
        );
    }

    #[test]
    fn d3_and_p1_cover_the_wal_module() {
        // WAL records round-trip through the same shortest-roundtrip
        // float Display as the wire protocol, and the append path runs
        // inside request handling: recovery bit-identity rests on both
        // scopes covering the durability layer.
        let src = "let s = format!(\"{:?}\", x).unwrap();\n";
        assert_eq!(
            rules_of(&scan_source("crates/service/src/wal.rs", src)),
            ["D3", "P1"]
        );
    }

    #[test]
    fn p1_covers_the_supervision_paths() {
        // The out-of-process machinery is request-handling code too: a
        // panic in the supervisor or the shard daemon takes a whole cell
        // (or the router) down, so P1 must keep covering these files.
        let src = "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
        for path in [
            "crates/service/src/supervisor.rs",
            "crates/service/src/bin/shardd.rs",
            "crates/service/src/bin/routerd.rs",
        ] {
            assert_eq!(rules_of(&scan_source(path, src)), ["P1"], "for {path}");
        }
    }

    #[test]
    fn out_of_scope_paths_are_ignored() {
        let src = "let t = Instant::now(); let m = HashMap::new(); x.unwrap();\n";
        assert!(scan_source("crates/bench/src/bin/fig01.rs", src).is_empty());
        assert!(scan_source("crates/service/src/loadgen.rs", src).is_empty());
        // P1 outside crates/service never fires; D rules still do.
        let findings = scan_source("crates/model/src/x.rs", src);
        assert_eq!(rules_of(&findings), ["D1", "D2"]);
    }
}
