//! CLI entry point: `haste-lint check | list | --explain <rule>`.

use std::path::PathBuf;
use std::process::ExitCode;

use haste_lint::{catalog, find_workspace_root, run_check};

const USAGE: &str = "\
haste-lint — workspace static analysis for the HASTE determinism,
panic-safety, and protocol/doc contracts.

USAGE:
    cargo run -p haste-lint -- check [--root <dir>]
    cargo run -p haste-lint -- list
    cargo run -p haste-lint -- --explain <rule>

COMMANDS:
    check            Scan the workspace; print `file:line rule message`
                     diagnostics and exit 1 on any unsuppressed finding.
    list             Print the rule catalog.
    --explain <rule> Print a rule's rationale, scope, and suppression
                     syntax (by id `D1` or slug `hash-collections`).

Suppress a finding in place with
    // haste-lint: allow(<rule>) — <reason>       (this line or the next)
    // haste-lint: allow-file(<rule>) — <reason>  (whole file)
See docs/lints.md for the full catalog.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let mut root: Option<PathBuf> = None;
            loop {
                match it.next() {
                    Some("--root") => match it.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage_error("--root needs a directory"),
                    },
                    Some(other) => return usage_error(&format!("unknown argument `{other}`")),
                    None => break,
                }
            }
            check(root)
        }
        Some("list") => {
            for info in catalog::RULES {
                println!("{:3} {:20} {}", info.id, info.name, info.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--explain") | Some("explain") => match it.next() {
            Some(key) => match catalog::rule(key) {
                Some(info) => {
                    print!("{}", catalog::explain(info));
                    ExitCode::SUCCESS
                }
                None => usage_error(&format!(
                    "unknown rule `{key}` (try `list` for the catalog)"
                )),
            },
            None => usage_error("--explain needs a rule id"),
        },
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn check(root: Option<PathBuf>) -> ExitCode {
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                // Fall back to the compile-time workspace location, so the
                // binary works when invoked from outside the tree.
                None => {
                    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                    match manifest.parent().and_then(|p| p.parent()) {
                        Some(dir) => dir.to_path_buf(),
                        None => return usage_error("cannot locate the workspace root"),
                    }
                }
            }
        }
    };
    let findings = run_check(&root);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        eprintln!("haste-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "haste-lint: {} finding(s) — `cargo run -p haste-lint -- --explain <rule>` \
             explains a rule, `// haste-lint: allow(<rule>) — <reason>` suppresses a site",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("haste-lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
