//! CLI entry point: `haste-lint check | baseline | list | --explain <rule>`.

use std::path::PathBuf;
use std::process::ExitCode;

use haste_lint::{baseline, catalog, find_workspace_root, run_check_report, sarif};

const USAGE: &str = "\
haste-lint — workspace static analysis for the HASTE determinism,
panic-safety, concurrency-safety, and protocol/doc contracts.

USAGE:
    cargo run -p haste-lint -- check [--root <dir>] [--format human|sarif]
                                     [--out <file>] [--baseline <file>]
    cargo run -p haste-lint -- baseline [--root <dir>] --out <file>
    cargo run -p haste-lint -- list
    cargo run -p haste-lint -- --explain <rule>

COMMANDS:
    check            Scan the workspace; print `file:line rule message`
                     diagnostics and exit 1 on any unsuppressed finding.
                     `--format sarif` emits a SARIF 2.1.0 document instead
                     (suppressed findings included, marked suppressed);
                     `--out` writes it to a file; `--baseline` filters
                     findings fingerprinted in the given baseline file.
    baseline         Scan and write a baseline accepting every current
                     finding to --out (for bootstrapping a new rule on a
                     dirty tree; CI keeps the committed baseline empty).
    list             Print the rule catalog.
    --explain <rule> Print a rule's rationale, scope, and suppression
                     syntax (by id `D1` or slug `hash-collections`).

Suppress a finding in place with
    // haste-lint: allow(<rule>) — <reason>       (this line or the next)
    // haste-lint: allow-file(<rule>) — <reason>  (whole file)
See docs/lints.md for the full catalog.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let mut root: Option<PathBuf> = None;
            let mut format = Format::Human;
            let mut out: Option<PathBuf> = None;
            let mut baseline_path: Option<PathBuf> = None;
            loop {
                match it.next() {
                    Some("--root") => match it.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage_error("--root needs a directory"),
                    },
                    Some("--format") => match it.next() {
                        Some("human") => format = Format::Human,
                        Some("sarif") => format = Format::Sarif,
                        Some(other) => {
                            return usage_error(&format!(
                                "unknown format `{other}` (human | sarif)"
                            ))
                        }
                        None => return usage_error("--format needs a value (human | sarif)"),
                    },
                    Some("--out") => match it.next() {
                        Some(file) => out = Some(PathBuf::from(file)),
                        None => return usage_error("--out needs a file"),
                    },
                    Some("--baseline") => match it.next() {
                        Some(file) => baseline_path = Some(PathBuf::from(file)),
                        None => return usage_error("--baseline needs a file"),
                    },
                    Some(other) => return usage_error(&format!("unknown argument `{other}`")),
                    None => break,
                }
            }
            check(root, format, out, baseline_path)
        }
        Some("baseline") => {
            let mut root: Option<PathBuf> = None;
            let mut out: Option<PathBuf> = None;
            loop {
                match it.next() {
                    Some("--root") => match it.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage_error("--root needs a directory"),
                    },
                    Some("--out") => match it.next() {
                        Some(file) => out = Some(PathBuf::from(file)),
                        None => return usage_error("--out needs a file"),
                    },
                    Some(other) => return usage_error(&format!("unknown argument `{other}`")),
                    None => break,
                }
            }
            let Some(out) = out else {
                return usage_error("baseline needs --out <file>");
            };
            write_baseline(root, out)
        }
        Some("list") => {
            for info in catalog::RULES {
                println!("{:3} {:20} {}", info.id, info.name, info.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--explain") | Some("explain") => match it.next() {
            Some(key) => match catalog::rule(key) {
                Some(info) => {
                    print!("{}", catalog::explain(info));
                    ExitCode::SUCCESS
                }
                None => usage_error(&format!(
                    "unknown rule `{key}` (try `list` for the catalog)"
                )),
            },
            None => usage_error("--explain needs a rule id"),
        },
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

enum Format {
    Human,
    Sarif,
}

fn check(
    root: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
) -> ExitCode {
    let Some(root) = resolve_root(root) else {
        return usage_error("cannot locate the workspace root");
    };
    let mut report = run_check_report(&root);

    let mut baselined = Vec::new();
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("haste-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let accepted = match baseline::parse(&text) {
            Ok(set) => set,
            Err(e) => {
                eprintln!("haste-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let (live, matched) = baseline::split(std::mem::take(&mut report.findings), &accepted);
        report.findings = live;
        baselined = matched;
    }

    match format {
        Format::Human => {
            for finding in &report.findings {
                println!("{finding}");
            }
        }
        Format::Sarif => {
            let document = sarif::render(&report, &baselined);
            match &out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &document) {
                        eprintln!("haste-lint: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                None => print!("{document}"),
            }
        }
    }

    if report.findings.is_empty() {
        if baselined.is_empty() {
            eprintln!("haste-lint: clean");
        } else {
            eprintln!(
                "haste-lint: clean ({} finding(s) accepted by baseline)",
                baselined.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "haste-lint: {} finding(s) — `cargo run -p haste-lint -- --explain <rule>` \
             explains a rule, `// haste-lint: allow(<rule>) — <reason>` suppresses a site",
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}

fn write_baseline(root: Option<PathBuf>, out: PathBuf) -> ExitCode {
    let Some(root) = resolve_root(root) else {
        return usage_error("cannot locate the workspace root");
    };
    let report = run_check_report(&root);
    let text = baseline::render(&report.findings);
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("haste-lint: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "haste-lint: baseline with {} fingerprint(s) written to {}",
        report.findings.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn resolve_root(root: Option<PathBuf>) -> Option<PathBuf> {
    match root {
        Some(dir) => Some(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(dir) => Some(dir),
                // Fall back to the compile-time workspace location, so the
                // binary works when invoked from outside the tree.
                None => {
                    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                    manifest
                        .parent()
                        .and_then(|p| p.parent())
                        .map(|dir| dir.to_path_buf())
                }
            }
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("haste-lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
