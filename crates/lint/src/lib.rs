//! `haste-lint`: the workspace static-analysis pass.
//!
//! Zero external dependencies — the tree is walked with `std::fs` and every
//! rule is line/token-level matching, so the pass runs in milliseconds and
//! builds anywhere the workspace does (including fully offline). Run it as
//!
//! ```sh
//! cargo run -p haste-lint -- check
//! ```
//!
//! Rules (see `docs/lints.md` and `haste-lint -- --explain <rule>`):
//!
//! * **D1/D2/D3** — determinism: no std hash collections, no wall-clock
//!   reads outside SolverMetrics timing, no non-shortest-roundtrip float
//!   formatting in serialization paths.
//! * **P1** — panic-safety: no panicking constructs in daemon
//!   request-handling code.
//! * **C1/C2/C3** — contract consistency: `ErrCode`, request verbs and
//!   frame opcodes ↔ protocol doc, `METRICS?` keys and the typed metric
//!   catalog ↔ the protocol doc's `Metrics schema` table, vendored
//!   dependency allowlist.
//! * **L1/L2/L3** — concurrency safety over `crates/service` +
//!   `crates/parallel`: acyclic lock-order graph, no blocking call while
//!   a mutex guard is live, every socket acquisition covered by a
//!   deadline.
//! * **S0/S1** — suppression hygiene (malformed / unused
//!   `// haste-lint: allow(...)` comments).
//!
//! The scanners live in [`source`] (per-file D/P/S rules), [`concurrency`]
//! (the token-level L rules, on [`parse`]), and [`consistency`]
//! (cross-file C rules); [`run_check`] wires them to a real workspace
//! tree. [`sarif`] renders a [`CheckReport`] as SARIF 2.1.0; [`baseline`]
//! implements the finding-fingerprint accept list.

use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod catalog;
pub mod concurrency;
pub mod consistency;
pub mod parse;
pub mod sarif;
pub mod source;

pub use consistency::{
    check_errcode_docs, check_metrics_docs, check_metrics_schema, check_opcode_docs,
    check_vendor_allowlist, check_verb_docs, ManifestSet,
};
pub use source::{scan_source, scan_source_extra, scan_source_report, SuppressedFinding};

/// One diagnostic. Renders as `file:line rule message` (line 0 — a
/// file/workspace-level finding — renders without the line).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Stable rule id (`D1`).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{} {} {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{} {} {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// A full check run: surviving findings plus the suppressed ones (SARIF
/// output reports both, marking the latter `suppressed`).
#[derive(Debug, Default)]
pub struct CheckReport {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<SuppressedFinding>,
}

/// Runs every rule against the workspace rooted at `root`. Findings come
/// back sorted by `(file, line, rule)`; an empty vector means the tree is
/// lint-clean. IO problems (unreadable contract files) surface as findings
/// rather than errors so CI gets one uniform failure mode.
pub fn run_check(root: &Path) -> Vec<Finding> {
    run_check_report(root).findings
}

/// Runs only the concurrency rules (plus the shared suppression
/// machinery) over in-memory `(path, content)` pairs — the entry point
/// for fixture tests. D/P findings the fixture source would also trigger
/// are filtered out, so each planted violation exercises exactly its
/// rule.
pub fn check_concurrency(files: &[(String, String)]) -> Vec<Finding> {
    let extra = concurrency::analyze(files);
    let mut findings = Vec::new();
    for (path, content) in files {
        let hits: Vec<Finding> = extra.iter().filter(|f| &f.file == path).cloned().collect();
        findings.extend(
            source::scan_source_extra(path, content, &hits)
                .into_iter()
                .filter(|f| matches!(f.rule, "L1" | "L2" | "L3" | "S0" | "S1")),
        );
    }
    findings.sort();
    findings
}

/// [`run_check`], but also reporting what the suppressions absorbed.
pub fn run_check_report(root: &Path) -> CheckReport {
    let mut report = CheckReport::default();
    let findings = &mut report.findings;

    // Phase 1: read every tracked source file under crates/ once — the
    // concurrency rules resolve calls across files, so they need the
    // whole set before any per-file scan.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in rust_sources(&root.join("crates")) {
        let rel = relative(&path, root);
        // The linter's own sources and fixtures spell the forbidden tokens.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(content) => sources.push((rel, content)),
            Err(e) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: "S0",
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    let concurrency_hits = concurrency::analyze(&sources);

    // Phase 2: per-file D/P/S scan, with that file's concurrency hits
    // merged in before suppression absorption (one `allow(L2)` both
    // silences the hit and counts as used for S1).
    for (rel, content) in &sources {
        let extra: Vec<Finding> = concurrency_hits
            .iter()
            .filter(|f| &f.file == rel)
            .cloned()
            .collect();
        let file_report = source::scan_source_report(rel, content, &extra);
        findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
    }
    let findings = &mut report.findings;

    // C1/C2: the protocol contract files. The router serves the same
    // METRICS? block as the single daemon, so both are held to the doc;
    // the framing module's opcode constants are held to the doc's v3
    // opcode table.
    const PROTO: &str = "crates/service/src/proto.rs";
    const SERVER: &str = "crates/service/src/server.rs";
    const ROUTER: &str = "crates/service/src/router.rs";
    const FRAMING: &str = "crates/service/src/framing.rs";
    const METRICS_CATALOG: &str = "crates/metrics/src/catalog.rs";
    const DOC: &str = "docs/service_protocol.md";
    match (
        read_rel(root, PROTO),
        read_rel(root, SERVER),
        read_rel(root, ROUTER),
        read_rel(root, FRAMING),
        read_rel(root, METRICS_CATALOG),
        read_rel(root, DOC),
    ) {
        (Ok(proto), Ok(server), Ok(router), Ok(framing), Ok(catalog), Ok(doc)) => {
            findings.extend(consistency::check_errcode_docs(PROTO, &proto, DOC, &doc));
            findings.extend(consistency::check_verb_docs(PROTO, &proto, DOC, &doc));
            findings.extend(consistency::check_metrics_docs(SERVER, &server, DOC, &doc));
            findings.extend(consistency::check_metrics_docs(ROUTER, &router, DOC, &doc));
            findings.extend(consistency::check_opcode_docs(FRAMING, &framing, DOC, &doc));
            findings.extend(consistency::check_metrics_schema(
                METRICS_CATALOG,
                &catalog,
                DOC,
                &doc,
            ));
        }
        (proto, server, router, framing, catalog, doc) => {
            for (rel, result) in [
                (PROTO, proto),
                (SERVER, server),
                (ROUTER, router),
                (FRAMING, framing),
                (METRICS_CATALOG, catalog),
                (DOC, doc),
            ] {
                if let Err(e) = result {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: 0,
                        rule: "C1",
                        message: format!("contract file is unreadable: {e}"),
                    });
                }
            }
        }
    }

    // C3: the manifest inventory.
    match read_rel(root, "Cargo.toml") {
        Ok(root_manifest) => {
            let mut members = Vec::new();
            for base in ["crates", "vendor"] {
                for dir in subdirectories(&root.join(base)) {
                    let manifest = dir.join("Cargo.toml");
                    if let Ok(content) = fs::read_to_string(&manifest) {
                        members.push((relative(&manifest, root), content));
                    }
                }
            }
            let vendor_dirs = subdirectories(&root.join("vendor"))
                .iter()
                .filter_map(|d| d.file_name().map(|n| n.to_string_lossy().into_owned()))
                .collect();
            findings.extend(consistency::check_vendor_allowlist(&ManifestSet {
                root: ("Cargo.toml".to_string(), root_manifest),
                members,
                vendor_dirs,
            }));
        }
        Err(e) => findings.push(Finding {
            file: "Cargo.toml".to_string(),
            line: 0,
            rule: "C3",
            message: format!("workspace manifest is unreadable: {e}"),
        }),
    }

    findings.sort();
    report.suppressed.sort();
    report
}

/// Walks upward from `start` to the enclosing workspace root (the first
/// directory whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All `.rs` files under `base`, recursively, in sorted order (the walk
/// order must not depend on directory-entry order, which the filesystem
/// does not define). `target/` subtrees are skipped.
fn rust_sources(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Immediate subdirectories of `base`, sorted.
fn subdirectories(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(base) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    out
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn read_rel(root: &Path, rel: &str) -> std::io::Result<String> {
    fs::read_to_string(root.join(rel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_formats() {
        let f = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 12,
            rule: "D1",
            message: "msg".to_string(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:12 D1 msg");
        let f = Finding { line: 0, ..f };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs D1 msg");
    }
}
