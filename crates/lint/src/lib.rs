//! `haste-lint`: the workspace static-analysis pass.
//!
//! Zero external dependencies — the tree is walked with `std::fs` and every
//! rule is line/token-level matching, so the pass runs in milliseconds and
//! builds anywhere the workspace does (including fully offline). Run it as
//!
//! ```sh
//! cargo run -p haste-lint -- check
//! ```
//!
//! Rules (see `docs/lints.md` and `haste-lint -- --explain <rule>`):
//!
//! * **D1/D2/D3** — determinism: no std hash collections, no wall-clock
//!   reads outside SolverMetrics timing, no non-shortest-roundtrip float
//!   formatting in serialization paths.
//! * **P1** — panic-safety: no panicking constructs in daemon
//!   request-handling code.
//! * **C1/C2/C3** — contract consistency: `ErrCode` and frame opcodes ↔
//!   protocol doc, `METRICS?` keys and the typed metric catalog ↔ the
//!   protocol doc's `Metrics schema` table, vendored dependency allowlist.
//! * **S0/S1** — suppression hygiene (malformed / unused
//!   `// haste-lint: allow(...)` comments).
//!
//! The scanners live in [`source`] (per-file D/P/S rules) and
//! [`consistency`] (cross-file C rules); [`run_check`] wires them to a real
//! workspace tree.

use std::fs;
use std::path::{Path, PathBuf};

pub mod catalog;
pub mod consistency;
pub mod source;

pub use consistency::{
    check_errcode_docs, check_metrics_docs, check_metrics_schema, check_opcode_docs,
    check_vendor_allowlist, ManifestSet,
};
pub use source::scan_source;

/// One diagnostic. Renders as `file:line rule message` (line 0 — a
/// file/workspace-level finding — renders without the line).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Stable rule id (`D1`).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{} {} {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{} {} {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Runs every rule against the workspace rooted at `root`. Findings come
/// back sorted by `(file, line, rule)`; an empty vector means the tree is
/// lint-clean. IO problems (unreadable contract files) surface as findings
/// rather than errors so CI gets one uniform failure mode.
pub fn run_check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    // D/P/S rules over every tracked source file under crates/.
    for path in rust_sources(&root.join("crates")) {
        let rel = relative(&path, root);
        // The linter's own sources and fixtures spell the forbidden tokens.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(content) => findings.extend(source::scan_source(&rel, &content)),
            Err(e) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: "S0",
                message: format!("unreadable source file: {e}"),
            }),
        }
    }

    // C1/C2: the protocol contract files. The router serves the same
    // METRICS? block as the single daemon, so both are held to the doc;
    // the framing module's opcode constants are held to the doc's v3
    // opcode table.
    const PROTO: &str = "crates/service/src/proto.rs";
    const SERVER: &str = "crates/service/src/server.rs";
    const ROUTER: &str = "crates/service/src/router.rs";
    const FRAMING: &str = "crates/service/src/framing.rs";
    const METRICS_CATALOG: &str = "crates/metrics/src/catalog.rs";
    const DOC: &str = "docs/service_protocol.md";
    match (
        read_rel(root, PROTO),
        read_rel(root, SERVER),
        read_rel(root, ROUTER),
        read_rel(root, FRAMING),
        read_rel(root, METRICS_CATALOG),
        read_rel(root, DOC),
    ) {
        (Ok(proto), Ok(server), Ok(router), Ok(framing), Ok(catalog), Ok(doc)) => {
            findings.extend(consistency::check_errcode_docs(PROTO, &proto, DOC, &doc));
            findings.extend(consistency::check_metrics_docs(SERVER, &server, DOC, &doc));
            findings.extend(consistency::check_metrics_docs(ROUTER, &router, DOC, &doc));
            findings.extend(consistency::check_opcode_docs(FRAMING, &framing, DOC, &doc));
            findings.extend(consistency::check_metrics_schema(
                METRICS_CATALOG,
                &catalog,
                DOC,
                &doc,
            ));
        }
        (proto, server, router, framing, catalog, doc) => {
            for (rel, result) in [
                (PROTO, proto),
                (SERVER, server),
                (ROUTER, router),
                (FRAMING, framing),
                (METRICS_CATALOG, catalog),
                (DOC, doc),
            ] {
                if let Err(e) = result {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: 0,
                        rule: "C1",
                        message: format!("contract file is unreadable: {e}"),
                    });
                }
            }
        }
    }

    // C3: the manifest inventory.
    match read_rel(root, "Cargo.toml") {
        Ok(root_manifest) => {
            let mut members = Vec::new();
            for base in ["crates", "vendor"] {
                for dir in subdirectories(&root.join(base)) {
                    let manifest = dir.join("Cargo.toml");
                    if let Ok(content) = fs::read_to_string(&manifest) {
                        members.push((relative(&manifest, root), content));
                    }
                }
            }
            let vendor_dirs = subdirectories(&root.join("vendor"))
                .iter()
                .filter_map(|d| d.file_name().map(|n| n.to_string_lossy().into_owned()))
                .collect();
            findings.extend(consistency::check_vendor_allowlist(&ManifestSet {
                root: ("Cargo.toml".to_string(), root_manifest),
                members,
                vendor_dirs,
            }));
        }
        Err(e) => findings.push(Finding {
            file: "Cargo.toml".to_string(),
            line: 0,
            rule: "C3",
            message: format!("workspace manifest is unreadable: {e}"),
        }),
    }

    findings.sort();
    findings
}

/// Walks upward from `start` to the enclosing workspace root (the first
/// directory whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All `.rs` files under `base`, recursively, in sorted order (the walk
/// order must not depend on directory-entry order, which the filesystem
/// does not define). `target/` subtrees are skipped.
fn rust_sources(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Immediate subdirectories of `base`, sorted.
fn subdirectories(base: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(base) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    out
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn read_rel(root: &Path, rel: &str) -> std::io::Result<String> {
    fs::read_to_string(root.join(rel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_formats() {
        let f = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 12,
            rule: "D1",
            message: "msg".to_string(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:12 D1 msg");
        let f = Finding { line: 0, ..f };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs D1 msg");
    }
}
