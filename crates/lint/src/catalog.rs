//! The rule catalog: ids, rationale, and `--explain` text.
//!
//! Rule ids are short and stable (`D1`, `P1`, `C3`, …) because they are what
//! suppression comments name and what CI failures print. Each rule also has
//! a slug (`hash-collections`) accepted anywhere an id is.

/// Static metadata of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable short id (`D1`).
    pub id: &'static str,
    /// Human slug (`hash-collections`), accepted as an alias of the id.
    pub name: &'static str,
    /// One-line summary printed by `list`.
    pub summary: &'static str,
    /// Why the rule exists, printed by `--explain`.
    pub rationale: &'static str,
    /// What the rule scans, printed by `--explain`.
    pub scope: &'static str,
    /// A suppression example, printed by `--explain`.
    pub example: &'static str,
}

/// Every rule the analyzer knows, in catalog order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        name: "hash-collections",
        summary: "std hash collections are forbidden in deterministic crates",
        rationale: "std::collections::HashMap/HashSet iterate in RandomState order, which \
                    varies across processes. Solver output, snapshots, and negotiation \
                    traces must be bit-identical across runs, thread counts, and shards, \
                    so every collection whose iteration order can reach an output must be \
                    a BTreeMap/BTreeSet (or an index-ordered Vec).",
        scope: "all .rs files under crates/ except crates/bench, crates/lint, and \
                crates/service/src/loadgen.rs; test modules are NOT exempt (tests that \
                iterate a hash map can assert order-dependent facts flakily)",
        example: "// haste-lint: allow(D1) — keys are consumed unordered and never printed",
    },
    RuleInfo {
        id: "D2",
        name: "wallclock",
        summary: "wall-clock reads (Instant::now/SystemTime) are forbidden outside metrics timing",
        rationale: "Reading the wall clock inside solver or engine code lets physical time \
                    leak into algorithm decisions, breaking replay determinism. The only \
                    sanctioned use is measuring phase durations that feed SolverMetrics \
                    (timings are reported, never branched on); each such site carries a \
                    suppression naming that contract.",
        scope: "all .rs files under crates/ except crates/bench, crates/lint, and \
                crates/service/src/loadgen.rs (measurement harnesses)",
        example: "// haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state",
    },
    RuleInfo {
        id: "D3",
        name: "float-format",
        summary: "snapshot/io paths must format floats with bare `{}` (shortest roundtrip)",
        rationale: "The text formats are the determinism anchor: a snapshot must parse back \
                    to bit-identical f64s. Rust's `{}` Display prints the shortest string \
                    that round-trips exactly; `{:?}` differs in shape (`1.0` vs `1`), and \
                    precision (`{:.3}`) or exponent (`{:e}`) formats truncate. Any of them \
                    in a serialization path silently breaks restore bit-identity.",
        scope: "the serialization paths: crates/model/src/io.rs, \
                crates/distributed/src/engine.rs (snapshot writer), \
                crates/service/src/proto.rs, crates/service/src/server.rs, \
                crates/service/src/router.rs, and crates/service/src/framing.rs \
                (binary frames carry verbatim reply text)",
        example: "// haste-lint: allow(D3) — error-message formatting, never parsed back",
    },
    RuleInfo {
        id: "P1",
        name: "service-panic",
        summary: "panicking constructs are forbidden in daemon request-handling code",
        rationale: "A panic in a connection handler kills that connection (and with a \
                    mutating request half-applied, can wedge the shared engine). The \
                    daemon's contract is `ERR <code>` for every failure, so request paths \
                    must not contain unwrap/expect/panic!/unreachable!/todo!/unimplemented! \
                    or literal slice indexing — use pattern matching and `?` instead. \
                    catch_unwind in the dispatcher is a backstop, not a license.",
        scope: "everything under crates/service/src/ except loadgen.rs — including the \
                supervision paths (supervisor.rs, bin/shardd.rs, bin/routerd.rs): a panic \
                in the supervisor takes the whole router down, not one connection; \
                everything from the first `#[cfg(test)]` line to end of file is exempt \
                (test modules sit last)",
        example: "// haste-lint: allow(P1) — index guarded by the arity check above",
    },
    RuleInfo {
        id: "C1",
        name: "errcode-docs",
        summary: "ErrCode variants and frame opcodes must match the protocol doc exactly",
        rationale: "Clients dispatch on the stable wire tokens of `ERR <code>` replies and \
                    on the opcode bytes of v3 frames. A variant or opcode missing from \
                    docs/service_protocol.md is an undocumented API; a documented one with \
                    no constant is a spec lie. The wire tokens in \
                    crates/service/src/proto.rs (and the `OP_*` constants in \
                    crates/service/src/framing.rs, numeric values included) must match the \
                    doc's tables, both directions.",
        scope: "crates/service/src/proto.rs `ErrCode::as_str` arms vs the `Error codes` \
                table of docs/service_protocol.md, and crates/service/src/framing.rs \
                `const OP_*` declarations vs the doc's v3 opcode table",
        example: "(not suppressible — fix the code or the doc)",
    },
    RuleInfo {
        id: "C2",
        name: "metrics-docs",
        summary: "metric families and METRICS? keys must match the protocol doc, both ways",
        rationale: "The `METRICS?` reply and the `EXPORT?` exposition are scrape surfaces: \
                    dashboards and the loadgen harness parse them. Emitting a key or \
                    family the doc does not name ships an undocumented metric; \
                    documenting one the server does not emit breaks consumers that trust \
                    the spec. The emitted METRICS? key set must match the doc's \
                    `METRICS?` section, and the typed catalog in \
                    crates/metrics/src/catalog.rs must match the doc's `Metrics schema` \
                    table — same kinds, labels, and legacy aliases — with names obeying \
                    the `haste_<subsystem>_<name>_<unit>` suffix rules and every legacy \
                    alias mapping one-to-one onto the documented METRICS? keys.",
        scope: "the `Request::Metrics` arms of crates/service/src/server.rs and \
                crates/service/src/router.rs (which adds the shard-health keys) vs the \
                `### METRICS?` section of docs/service_protocol.md, and the `CATALOG` \
                entries of crates/metrics/src/catalog.rs vs the doc's `## Metrics schema` \
                table",
        example: "(not suppressible — fix the code or the doc)",
    },
    RuleInfo {
        id: "C3",
        name: "vendor-allowlist",
        summary: "every dependency must resolve in-tree (crates/ or vendor/); no crates.io deps",
        rationale: "The workspace builds fully offline: every third-party crate is a \
                    vendored subset under vendor/. A version-only dependency would resolve \
                    to crates.io and fail in the build container; a vendored crate nothing \
                    references is dead weight that rots silently. Workspace dependencies \
                    must carry an in-tree path, member dependencies must say \
                    `workspace = true` (or an in-tree path), and every vendor/ directory \
                    must be reachable from the workspace dependency allowlist.",
        scope: "Cargo.toml (workspace.dependencies), crates/*/Cargo.toml and \
                vendor/*/Cargo.toml ([dependencies]/[dev-dependencies]/[build-dependencies]), \
                and the vendor/ directory listing",
        example: "(not suppressible — vendor the crate or drop the dependency)",
    },
    RuleInfo {
        id: "L1",
        name: "lock-order",
        summary: "the static lock-order graph must be acyclic",
        rationale: "Two threads acquiring the same locks in different orders can deadlock. \
                    The analyzer extracts every Mutex/RwLock acquisition (lock identity = \
                    field or static name), follows calls made while a guard is live, and \
                    fails on any cycle in the resulting acquisition-order graph — printing \
                    the offending chain with a file:line witness per edge. A self-edge \
                    (re-acquiring a lock already held, directly or through a callee) is a \
                    one-node cycle: with std's non-reentrant Mutex that is a guaranteed \
                    self-deadlock.",
        scope: "crates/service/src/ and crates/parallel/src/ (loadgen.rs and test modules \
                exempt); locks on different instances that share a field name share one \
                graph node (conservative)",
        example: "// haste-lint: allow(L1) — instances are disjoint: each cell has its own `inner`",
    },
    RuleInfo {
        id: "L2",
        name: "blocking-under-lock",
        summary: "no blocking call while a lock guard is live",
        rationale: "A blocking call under a lock stalls every thread that needs that lock \
                    for as long as the call takes — unbounded, if it is an undeadlined \
                    socket read or a `Child::wait`. The analyzer tracks live guards \
                    through each function body (let-bound guards until drop/scope end, \
                    temporaries until the statement ends) and flags socket/pipe I/O, \
                    `.wait()`, `.recv(..)`, `.output(..)`, and `sleep` — directly or \
                    through a resolved call chain. `Condvar::wait(&guard)` is exempt: \
                    releasing the lock while parked is its contract.",
        scope: "crates/service/src/ and crates/parallel/src/ (loadgen.rs and test modules \
                exempt); the router's lockstep-TICK sites and the supervisor's \
                per-cell-mutex request sites carry audited suppressions naming the \
                deadline that bounds the block",
        example: "// haste-lint: allow(L2) — per-request deadline bounds the block; \
                  serializing requests per cell is this mutex's purpose",
    },
    RuleInfo {
        id: "L3",
        name: "deadline-coverage",
        summary: "TCP streams must be acquired within sight of a read+write deadline",
        rationale: "A stream with no deadline turns a stuck peer into a stuck service: one \
                    wedged scrape or child daemon blocks its handler thread forever. Every \
                    function that acquires a stream (`TcpStream::connect`, \
                    `listener.accept()`) must call `set_read_timeout` and \
                    `set_write_timeout` (or `set_timeout`) itself or in a directly-called \
                    function. Coverage is depth-1 on purpose: a deadline set three calls \
                    away is an accident waiting for a refactor, not a policy.",
        scope: "crates/service/src/ and crates/parallel/src/ (loadgen.rs and test modules \
                exempt)",
        example: "// haste-lint: allow(L3) — deliberately undeadlined: replication stream \
                  blocks until the peer recovers",
    },
    RuleInfo {
        id: "S0",
        name: "bad-suppression",
        summary: "a haste-lint comment that does not parse",
        rationale: "A malformed suppression silently suppresses nothing; surfacing it as a \
                    finding keeps the suppression inventory honest. Valid forms: \
                    `// haste-lint: allow(D1) — <reason>` (this line or the line below) and \
                    `// haste-lint: allow-file(D1) — <reason>` (whole file). The rule list \
                    is comma-separated ids or slugs; the reason is mandatory.",
        scope: "every comment containing `haste-lint:` in scanned .rs files",
        example: "(fix the comment: name real rules and give a reason after an em-dash)",
    },
    RuleInfo {
        id: "S1",
        name: "unused-suppression",
        summary: "a suppression that matched no finding",
        rationale: "Suppressions are exemptions from the determinism/panic contracts; one \
                    that no longer suppresses anything misstates where the exemptions are. \
                    Delete it (the code it excused is gone) rather than leaving it to hide \
                    a future regression at that line.",
        scope: "every parsed suppression in scanned .rs files",
        example: "(delete the stale haste-lint comment)",
    },
];

/// Looks a rule up by id (`D1`) or slug (`hash-collections`), case-insensitive.
pub fn rule(key: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(key) || r.name.eq_ignore_ascii_case(key))
}

/// Renders the `--explain` text for one rule.
pub fn explain(info: &RuleInfo) -> String {
    format!(
        "{} ({})\n  {}\n\nWhy:\n  {}\n\nScope:\n  {}\n\nSuppression:\n  {}\n",
        info.id, info.name, info.summary, info.rationale, info.scope, info.example
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_id_and_slug() {
        assert_eq!(rule("D1").unwrap().name, "hash-collections");
        assert_eq!(rule("hash-collections").unwrap().id, "D1");
        assert_eq!(rule("p1").unwrap().id, "P1");
        assert!(rule("Z9").is_none());
    }

    #[test]
    fn ids_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn explain_mentions_the_id() {
        for info in RULES {
            assert!(explain(info).contains(info.id));
        }
    }
}
