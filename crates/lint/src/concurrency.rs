//! The concurrency rules: **L1** lock-order acyclicity, **L2** no
//! blocking call under a live lock guard, **L3** deadline coverage for
//! TCP stream acquisition — run over `crates/service` + `crates/parallel`.
//!
//! Built on [`crate::parse`]: every scanned file is tokenized and
//! structurally indexed, then a flow-light walk over each function body
//! tracks live lock guards and resolves calls through a small typing
//! heuristic. Resolution sources, in precedence order:
//!
//! 1. `self` — the enclosing impl type;
//! 2. typed parameters (`conn: &mut Client`);
//! 3. `let x: T = ...` annotations and `let x = T::f(...)` constructors;
//! 4. single-payload enum tuple patterns (`ShardSlot::Local(shard) =>`);
//! 5. the field-name heuristic: a variable named like a struct field
//!    (singular of a plural field counts) gets that field's declared
//!    type(s) — `conn` resolves via `conn: Option<Client>`.
//!
//! Anything unresolved simply does not propagate — the analysis prefers
//! silence to noise, and every rule keeps the standard suppression
//! escape hatch. Known limitations (documented in `docs/lints.md`):
//! closures execute where they are written (a guard live at a `spawn`
//! site taints the closure), `Drop`-triggered blocking is invisible, and
//! same-named locks on different instances share one graph node.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::parse::{FileIndex, FnDecl, Token, TokenKind};
use crate::Finding;

/// Whether the concurrency rules scan `path` (workspace-relative).
pub fn in_scope(path: &str) -> bool {
    (path.starts_with("crates/service/src/") || path.starts_with("crates/parallel/src/"))
        && path.ends_with(".rs")
        && path != "crates/service/src/loadgen.rs"
}

/// Blocking I/O method names (called with a receiver, `.m(`).
const IO_METHODS: &[&str] = &[
    "read",
    "read_line",
    "read_until",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "write_fmt",
    "flush",
];

/// Deadline-setting method names (L3 coverage tokens).
const COVERAGE_METHODS: &[&str] = &["set_read_timeout", "set_write_timeout", "set_timeout"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cov {
    Read,
    Write,
}

/// One lock acquisition inside a function body.
struct Acquire {
    lock: String,
    line: usize,
    /// Lock names of guards already live at this site.
    live: Vec<String>,
}

/// One resolved call site.
struct Call {
    /// Global function ids this call may land on.
    callees: Vec<usize>,
    /// Display name for diagnostics (`RemoteShard::submit`).
    desc: String,
    line: usize,
    live: Vec<String>,
}

/// One directly-blocking token site.
struct Blocking {
    desc: String,
    line: usize,
    live: Vec<String>,
}

/// One TCP stream acquisition site (L3 subject).
struct StreamAcq {
    desc: String,
    line: usize,
}

/// Per-function analysis facts extracted by the body walk.
#[derive(Default)]
struct FnFacts {
    acquires: Vec<Acquire>,
    calls: Vec<Call>,
    blocking: Vec<Blocking>,
    streams: Vec<StreamAcq>,
    coverage: BTreeSet<Cov>,
}

/// The cross-file model.
struct Model<'a> {
    files: Vec<(&'a str, FileIndex)>,
    /// Names of types that have at least one scanned impl block.
    types: BTreeSet<String>,
    /// Field/static name → lock kind, for lock identity.
    locks: BTreeMap<String, LockKind>,
    /// Field-name heuristic: variable name → candidate impl types.
    field_types: BTreeMap<String, BTreeSet<String>>,
    /// Enum tuple-variant name → candidate payload impl types.
    variant_types: BTreeMap<String, BTreeSet<String>>,
    /// `(type, method)` → global fn ids.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Free function name → global fn ids.
    free_fns: BTreeMap<String, Vec<usize>>,
    /// Flattened `(file index, fn index in file)` per global fn id.
    fns: Vec<(usize, usize)>,
}

impl<'a> Model<'a> {
    fn build(inputs: &'a [(String, String)]) -> Model<'a> {
        let files: Vec<(&str, FileIndex)> = inputs
            .iter()
            .map(|(path, content)| (path.as_str(), FileIndex::build(content)))
            .collect();

        let mut fns = Vec::new();
        let mut types = BTreeSet::new();
        for (fi, (_, index)) in files.iter().enumerate() {
            for (gi, f) in index.functions.iter().enumerate() {
                if let Some(ty) = &f.self_ty {
                    types.insert(ty.clone());
                }
                fns.push((fi, gi));
            }
        }

        let mut locks = BTreeMap::new();
        let mut field_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut variant_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (_, index) in &files {
            for s in &index.structs {
                for (field, ty_idents) in &s.fields {
                    record_lock(field, ty_idents, &mut locks);
                    let known: BTreeSet<String> = ty_idents
                        .iter()
                        .filter(|t| types.contains(*t))
                        .cloned()
                        .collect();
                    if !known.is_empty() {
                        field_types
                            .entry(field.clone())
                            .or_default()
                            .extend(known.clone());
                        if let Some(singular) = field.strip_suffix('s') {
                            if !singular.is_empty() {
                                field_types
                                    .entry(singular.to_string())
                                    .or_default()
                                    .extend(known);
                            }
                        }
                    }
                }
            }
            for (name, ty_idents, _) in &index.statics {
                record_lock(name, ty_idents, &mut locks);
            }
            for e in &index.enums {
                for (variant, payload) in &e.variants {
                    let known: BTreeSet<String> = payload
                        .iter()
                        .filter(|t| types.contains(*t))
                        .cloned()
                        .collect();
                    if !known.is_empty() {
                        variant_types
                            .entry(variant.clone())
                            .or_default()
                            .extend(known);
                    }
                }
            }
        }

        let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, (fi, gi)) in fns.iter().enumerate() {
            let f = &files[*fi].1.functions[*gi];
            match &f.self_ty {
                Some(ty) => methods
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id),
                None => free_fns.entry(f.name.clone()).or_default().push(id),
            }
        }

        Model {
            files,
            types,
            locks,
            field_types,
            variant_types,
            methods,
            free_fns,
            fns,
        }
    }

    fn decl(&self, id: usize) -> &FnDecl {
        let (fi, gi) = self.fns[id];
        &self.files[fi].1.functions[gi]
    }

    fn file_of(&self, id: usize) -> &str {
        self.files[self.fns[id].0].0
    }

    fn display_name(&self, id: usize) -> String {
        let f = self.decl(id);
        match &f.self_ty {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

fn record_lock(name: &str, ty_idents: &[String], locks: &mut BTreeMap<String, LockKind>) {
    if ty_idents.iter().any(|t| t == "Mutex") {
        locks.insert(name.to_string(), LockKind::Mutex);
    } else if ty_idents.iter().any(|t| t == "RwLock") {
        locks.insert(name.to_string(), LockKind::RwLock);
    }
}

/// Runs the L1/L2/L3 analysis over `files` (workspace-relative path +
/// content pairs; out-of-scope paths are ignored). Returns raw,
/// pre-suppression hits — `lib.rs` routes them through the shared
/// suppression machinery.
pub fn analyze(files: &[(String, String)]) -> Vec<Finding> {
    let scanned: Vec<(String, String)> = files
        .iter()
        .filter(|(path, _)| in_scope(path))
        .cloned()
        .collect();
    if scanned.is_empty() {
        return Vec::new();
    }
    let model = Model::build(&scanned);
    let facts: Vec<FnFacts> = (0..model.fns.len()).map(|id| walk_fn(&model, id)).collect();

    // Fixpoint: transitive lock sets and blocking origins.
    let mut trans_locks: Vec<BTreeSet<String>> = facts
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect())
        .collect();
    let mut blocking_origin: Vec<Option<String>> = facts
        .iter()
        .enumerate()
        .map(|(id, f)| {
            f.blocking
                .first()
                .map(|b| format!("`{}` at {}:{}", b.desc, model.file_of(id), b.line))
        })
        .collect();
    loop {
        let mut changed = false;
        for (id, facts_f) in facts.iter().enumerate() {
            for call in &facts_f.calls {
                for &callee in &call.callees {
                    if callee == id {
                        continue;
                    }
                    let callee_locks = trans_locks[callee].clone();
                    for lock in callee_locks {
                        if trans_locks[id].insert(lock) {
                            changed = true;
                        }
                    }
                    if blocking_origin[id].is_none() {
                        if let Some(origin) = blocking_origin[callee].clone() {
                            blocking_origin[id] =
                                Some(format!("via `{}`: {origin}", model.display_name(callee)));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Depth-1 coverage: a stream acquired in `f` must see a deadline call
    // in `f` itself or a function `f` directly calls.
    let coverage_of = |id: usize| -> BTreeSet<Cov> {
        let mut cov = facts[id].coverage.clone();
        for call in &facts[id].calls {
            for &callee in &call.callees {
                cov.extend(facts[callee].coverage.iter().copied());
            }
        }
        cov
    };

    let mut hits = Vec::new();

    // ---- L1: lock-order graph + cycle detection --------------------------
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    let mut record_edge = |from: &str, to: &str, file: &str, line: usize, via: String| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| (file.to_string(), line, via));
    };
    for (id, facts_f) in facts.iter().enumerate() {
        let file = model.file_of(id);
        for acq in &facts_f.acquires {
            for held in &acq.live {
                record_edge(held, &acq.lock, file, acq.line, model.display_name(id));
            }
        }
        for call in &facts_f.calls {
            if call.live.is_empty() {
                continue;
            }
            let mut acquired: BTreeSet<String> = BTreeSet::new();
            for &callee in &call.callees {
                acquired.extend(trans_locks[callee].iter().cloned());
            }
            for held in &call.live {
                for to in &acquired {
                    record_edge(held, to, file, call.line, call.desc.clone());
                }
            }
        }
    }
    hits.extend(lock_cycles(&edges));

    // ---- L2: blocking with a live guard ----------------------------------
    let mut l2: BTreeMap<(String, usize), String> = BTreeMap::new();
    for (id, facts_f) in facts.iter().enumerate() {
        let file = model.file_of(id);
        for b in &facts_f.blocking {
            if let Some(lock) = b.live.first() {
                l2.entry((file.to_string(), b.line)).or_insert_with(|| {
                    format!(
                        "`{}` may block while the `{lock}` guard is live; drop the guard \
                         before blocking I/O or record a deadline safety argument",
                        b.desc
                    )
                });
            }
        }
        for call in &facts_f.calls {
            let Some(lock) = call.live.first() else {
                continue;
            };
            let origin = call
                .callees
                .iter()
                .find_map(|&c| blocking_origin[c].clone());
            if let Some(origin) = origin {
                l2.entry((file.to_string(), call.line)).or_insert_with(|| {
                    format!(
                        "call to `{}` may block ({origin}) while the `{lock}` guard is \
                         live; drop the guard first or record a deadline safety argument",
                        call.desc
                    )
                });
            }
        }
    }
    for ((file, line), message) in l2 {
        hits.push(Finding {
            file,
            line,
            rule: "L2",
            message,
        });
    }

    // ---- L3: deadline coverage for stream acquisition --------------------
    for (id, facts_f) in facts.iter().enumerate() {
        if facts_f.streams.is_empty() {
            continue;
        }
        let cov = coverage_of(id);
        let mut missing = Vec::new();
        if !cov.contains(&Cov::Read) {
            missing.push("read");
        }
        if !cov.contains(&Cov::Write) {
            missing.push("write");
        }
        if missing.is_empty() {
            continue;
        }
        let file = model.file_of(id);
        for s in &facts_f.streams {
            hits.push(Finding {
                file: file.to_string(),
                line: s.line,
                rule: "L3",
                message: format!(
                    "`{}` acquires a TCP stream with no {} deadline in sight: call \
                     `set_read_timeout`/`set_write_timeout` (or `set_timeout`) in this \
                     function or a direct callee",
                    s.desc,
                    missing.join("+"),
                ),
            });
        }
    }

    hits
}

/// Extracts unique lock-order cycles from the edge map, one L1 finding
/// per cycle, with the full acquisition chain in the message.
fn lock_cycles(edges: &BTreeMap<(String, String), (String, usize, String)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<Vec<&str>> = vec![adj.get(start).cloned().unwrap_or_default()];
        while let Some(next_list) = stack.last_mut() {
            let Some(next) = next_list.pop() else {
                path.pop();
                stack.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&n| n == next) {
                // Cycle: path[pos..] + back to `next`.
                let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                let mut key = cycle.clone();
                key.sort();
                if seen_cycles.insert(key) {
                    findings.push(cycle_finding(&cycle, edges));
                }
                continue;
            }
            if path.len() < 16 {
                path.push(next);
                stack.push(adj.get(next).cloned().unwrap_or_default());
            }
        }
    }
    findings
}

/// Renders one cycle (`[a, b]` means a→b→a) into an L1 finding anchored
/// at the first edge's witness site.
fn cycle_finding(
    cycle: &[String],
    edges: &BTreeMap<(String, String), (String, usize, String)>,
) -> Finding {
    let mut chain = String::new();
    let mut anchor: Option<(String, usize)> = None;
    for (i, from) in cycle.iter().enumerate() {
        let to = &cycle[(i + 1) % cycle.len()];
        let (file, line, via) = &edges[&(from.clone(), to.clone())];
        if anchor.is_none() {
            anchor = Some((file.clone(), *line));
        }
        if !chain.is_empty() {
            chain.push_str(", ");
        }
        chain.push_str(&format!("`{from}` -> `{to}` ({file}:{line} in `{via}`)"));
    }
    let (file, line) = anchor.unwrap_or_default();
    Finding {
        file,
        line,
        rule: "L1",
        message: format!("lock-order cycle: {chain}; establish one global acquisition order"),
    }
}

// ----------------------------------------------------------------------
// Function body walk
// ----------------------------------------------------------------------

/// One live lock guard during the walk.
struct Guard {
    lock: String,
    /// Binding name (`locked`), if let-bound — `drop(name)` kills it.
    name: Option<String>,
    /// Brace depth the guard is scoped to; it dies when depth drops
    /// below this.
    depth: isize,
    /// For temporaries: dies at the next `;` at its own depth.
    statement: bool,
}

fn walk_fn(model: &Model<'_>, id: usize) -> FnFacts {
    let (fi, _) = model.fns[id];
    let index = &model.files[fi].1;
    let decl = model.decl(id);
    let tokens = body_tokens(index, decl);
    let locals = local_types(model, decl, &tokens);
    let mut facts = FnFacts::default();

    let resolve = |name: &str| -> BTreeSet<String> {
        if name == "self" {
            return decl.self_ty.iter().cloned().collect();
        }
        if let Some(tys) = locals.get(name) {
            if !tys.is_empty() {
                return tys.clone();
            }
        }
        model.field_types.get(name).cloned().unwrap_or_default()
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: isize = 0;
    // Active `let` binding: (name, depth) — names the next acquisition.
    let mut current_let: Option<(Option<String>, isize)> = None;

    let live = |guards: &[Guard]| -> Vec<String> {
        let mut seen = BTreeSet::new();
        guards
            .iter()
            .filter(|g| seen.insert(g.lock.clone()))
            .map(|g| g.lock.clone())
            .collect()
    };

    let mut t = 0usize;
    while t < tokens.len() {
        let tok = tokens[t];
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                if current_let.as_ref().is_some_and(|(_, d)| depth < *d) {
                    current_let = None;
                }
            }
            ";" => {
                guards.retain(|g| !(g.statement && g.depth == depth));
                if current_let.as_ref().is_some_and(|(_, d)| depth <= *d) {
                    current_let = None;
                }
            }
            "let" => {
                current_let = Some((let_binding_name(&tokens, t), depth));
            }
            _ => {}
        }

        // Calls and call-like tokens: an ident directly followed by `(`.
        if tok.kind == TokenKind::Ident && tokens.get(t + 1).is_some_and(|n| n.is_punct('(')) {
            let name = tok.text.as_str();
            let prev = t.checked_sub(1).map(|p| tokens[p]);
            let prev_is_dot = prev.is_some_and(|p| p.is_punct('.'));
            let prev_is_path = prev.is_some_and(|p| p.is_punct(':'));

            if prev_is_dot {
                let receiver = t.checked_sub(2).map(|p| tokens[p]);
                let recv_ident = receiver
                    .filter(|r| r.kind == TokenKind::Ident)
                    .map(|r| r.text.as_str());
                handle_method_call(
                    model,
                    &resolve,
                    &mut facts,
                    &mut guards,
                    &live,
                    &tokens,
                    t,
                    name,
                    recv_ident,
                    depth,
                    &current_let,
                );
            } else if prev_is_path {
                let qualifier = t.checked_sub(3).map(|p| tokens[p]);
                let qual_ident = qualifier
                    .filter(|q| q.kind == TokenKind::Ident)
                    .map(|q| q.text.as_str());
                let qual_ident = match qual_ident {
                    Some("Self") => decl.self_ty.as_deref(),
                    other => other,
                };
                handle_path_call(model, &mut facts, &live(&guards), tok, name, qual_ident);
            } else if !prev.is_some_and(|p| p.is("fn")) {
                handle_free_call(model, &mut facts, &mut guards, &live, &tokens, t, name);
            }
        }
        t += 1;
    }
    facts
}

/// A `.method(` site: lock acquisitions, blocking tokens, coverage
/// tokens, stream `.accept()`, and resolved method calls.
#[allow(clippy::too_many_arguments)]
fn handle_method_call(
    model: &Model<'_>,
    resolve: &dyn Fn(&str) -> BTreeSet<String>,
    facts: &mut FnFacts,
    guards: &mut Vec<Guard>,
    live: &dyn Fn(&[Guard]) -> Vec<String>,
    tokens: &[&Token],
    t: usize,
    name: &str,
    recv_ident: Option<&str>,
    depth: isize,
    current_let: &Option<(Option<String>, isize)>,
) {
    let line = tokens[t].line;
    // Lock acquisition: the receiver path must *end* in a declared
    // Mutex/RwLock field or static (`stdin().lock()` has `)` there).
    if let Some(recv) = recv_ident {
        let kind = model.locks.get(recv).copied();
        let is_acquire = matches!(
            (kind, name),
            (Some(_), "lock") | (Some(LockKind::RwLock), "read" | "write")
        );
        if is_acquire {
            facts.acquires.push(Acquire {
                lock: recv.to_string(),
                line,
                live: live(guards),
            });
            let (bound_name, let_depth) = match current_let {
                Some((name, d)) => (name.clone(), *d),
                None => (None, depth),
            };
            // `let _ = m.lock()` drops immediately: no guard.
            if bound_name.as_deref() != Some("_") {
                guards.push(Guard {
                    lock: recv.to_string(),
                    name: bound_name.clone(),
                    depth: let_depth,
                    statement: current_let.is_none(),
                });
            }
            return;
        }
    }

    if COVERAGE_METHODS.contains(&name) {
        match name {
            "set_read_timeout" => {
                facts.coverage.insert(Cov::Read);
            }
            "set_write_timeout" => {
                facts.coverage.insert(Cov::Write);
            }
            _ => {
                facts.coverage.insert(Cov::Read);
                facts.coverage.insert(Cov::Write);
            }
        }
        return;
    }

    if name == "accept" {
        facts.streams.push(StreamAcq {
            desc: ".accept()".to_string(),
            line,
        });
        return;
    }

    // Blocking tokens. `.wait()` only with *empty* parens — the Condvar
    // pattern `idle_cv.wait(&mut guard)` is the sanctioned sleep.
    let empty_parens = tokens.get(t + 2).is_some_and(|n| n.is_punct(')'));
    let blocking_desc = match name {
        "wait" if empty_parens => Some(".wait() on a child process".to_string()),
        "recv" => Some(".recv() without a timeout".to_string()),
        "output" => Some(".output() on a command".to_string()),
        m if IO_METHODS.contains(&m) => Some(format!(".{m}(..) stream I/O")),
        _ => None,
    };
    if let Some(desc) = blocking_desc {
        facts.blocking.push(Blocking {
            desc,
            line,
            live: live(guards),
        });
        // Fall through: a blocking name can still be a resolved method.
    }

    if name == "sleep" {
        facts.blocking.push(Blocking {
            desc: "sleep(..)".to_string(),
            line,
            live: live(guards),
        });
    }

    if let Some(recv) = recv_ident {
        let mut callees = Vec::new();
        for ty in resolve(recv) {
            if let Some(ids) = model.methods.get(&(ty.clone(), name.to_string())) {
                callees.extend(ids.iter().copied());
            }
        }
        if !callees.is_empty() {
            callees.sort_unstable();
            callees.dedup();
            let desc = describe_callees(model, &callees, name);
            facts.calls.push(Call {
                callees,
                desc,
                line,
                live: live(guards),
            });
        }
    }
}

/// A `Qual::name(` site: `TcpStream::connect`, `thread::sleep`,
/// `Type::assoc_fn`, and module-qualified free functions.
fn handle_path_call(
    model: &Model<'_>,
    facts: &mut FnFacts,
    live: &[String],
    tok: &Token,
    name: &str,
    qual_ident: Option<&str>,
) {
    let line = tok.line;
    if qual_ident == Some("TcpStream") && name == "connect" {
        facts.streams.push(StreamAcq {
            desc: "TcpStream::connect".to_string(),
            line,
        });
        return;
    }
    if name == "sleep" {
        facts.blocking.push(Blocking {
            desc: "thread::sleep".to_string(),
            line,
            live: live.to_vec(),
        });
        return;
    }
    let mut callees = Vec::new();
    if let Some(qual) = qual_ident {
        if model.types.contains(qual) {
            if let Some(ids) = model.methods.get(&(qual.to_string(), name.to_string())) {
                callees.extend(ids.iter().copied());
            }
        }
    }
    if callees.is_empty() {
        // `module::free_fn(...)` — the qualifier is not a scanned type.
        if let Some(ids) = model.free_fns.get(name) {
            callees.extend(ids.iter().copied());
        }
    }
    if !callees.is_empty() {
        callees.sort_unstable();
        callees.dedup();
        let desc = describe_callees(model, &callees, name);
        facts.calls.push(Call {
            callees,
            desc,
            line,
            live: live.to_vec(),
        });
    }
}

/// A bare `name(` site: `drop(guard)`, free-function calls.
fn handle_free_call(
    model: &Model<'_>,
    facts: &mut FnFacts,
    guards: &mut Vec<Guard>,
    live: &dyn Fn(&[Guard]) -> Vec<String>,
    tokens: &[&Token],
    t: usize,
    name: &str,
) {
    if name == "drop" {
        // `drop(g)` releases the named guard early.
        if let (Some(arg), Some(close)) = (tokens.get(t + 2), tokens.get(t + 3)) {
            if arg.kind == TokenKind::Ident && close.is_punct(')') {
                guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
            }
        }
        return;
    }
    if name == "sleep" {
        facts.blocking.push(Blocking {
            desc: "sleep(..)".to_string(),
            line: tokens[t].line,
            live: live(guards),
        });
        return;
    }
    if let Some(ids) = model.free_fns.get(name) {
        let callees = ids.clone();
        let desc = describe_callees(model, &callees, name);
        facts.calls.push(Call {
            callees,
            desc,
            line: tokens[t].line,
            live: live(guards),
        });
    }
}

fn describe_callees(model: &Model<'_>, callees: &[usize], name: &str) -> String {
    match callees {
        [single] => model.display_name(*single),
        _ => name.to_string(),
    }
}

/// The body token stream of `decl` with nested function bodies removed
/// (they are analyzed as their own functions).
fn body_tokens<'a>(index: &'a FileIndex, decl: &FnDecl) -> Vec<&'a Token> {
    let nested: Vec<Range<usize>> = index
        .functions
        .iter()
        .filter(|g| g.body.start > decl.body.start && g.body.end <= decl.body.end)
        .map(|g| g.body.clone())
        .collect();
    (decl.body.start..decl.body.end)
        .filter(|i| !nested.iter().any(|r| r.contains(i)))
        .map(|i| &index.tokens[i])
        .collect()
}

/// The binding name of a `let` at `t`: the last identifier (skipping
/// `mut`/`ref` and `::` path segments) before the `=`/`:`/`;` that ends
/// the pattern.
fn let_binding_name(tokens: &[&Token], t: usize) -> Option<String> {
    let mut name = None;
    let mut j = t + 1;
    let mut depth = 0isize;
    while let Some(tok) = tokens.get(j) {
        // Skip `::` path separators whole (`ShardSlot::Remote(remote)`).
        if tok.is_punct(':') && tokens.get(j + 1).is_some_and(|n| n.is_punct(':')) {
            j += 2;
            continue;
        }
        match tok.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "=" | ";" | ":" if depth <= 0 => break,
            "mut" | "ref" => {}
            _ if tok.kind == TokenKind::Ident => name = Some(tok.text.clone()),
            _ => {}
        }
        j += 1;
    }
    name
}

/// Flow-insensitive local typing: parameters, `let x: T`, constructor
/// `let x = T::f(...)`, and enum tuple patterns `Variant(x) =>`.
fn local_types(
    model: &Model<'_>,
    decl: &FnDecl,
    tokens: &[&Token],
) -> BTreeMap<String, BTreeSet<String>> {
    let mut locals: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, ty_idents) in &decl.params {
        let known: BTreeSet<String> = ty_idents
            .iter()
            .filter(|t| model.types.contains(*t))
            .cloned()
            .collect();
        if !known.is_empty() {
            locals.entry(name.clone()).or_default().extend(known);
        }
    }
    let mut t = 0usize;
    while t < tokens.len() {
        let tok = tokens[t];
        if tok.is("let") {
            collect_let_types(model, tokens, t, &mut locals);
        }
        // `Variant(binding) =>` / `Variant(binding) =` patterns.
        if tok.kind == TokenKind::Ident
            && tokens.get(t + 1).is_some_and(|n| n.is_punct('('))
            && tokens
                .get(t + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident)
            && tokens.get(t + 3).is_some_and(|n| n.is_punct(')'))
        {
            let arm = tokens.get(t + 4).is_some_and(|n| n.is_punct('='));
            if arm {
                if let Some(tys) = model.variant_types.get(tok.text.as_str()) {
                    locals
                        .entry(tokens[t + 2].text.clone())
                        .or_default()
                        .extend(tys.iter().cloned());
                }
            }
        }
        t += 1;
    }
    locals
}

/// Types from one `let` statement: `let x: T = ...` and
/// `let x = T::f(...)`.
fn collect_let_types(
    model: &Model<'_>,
    tokens: &[&Token],
    t: usize,
    locals: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let Some(name) = let_binding_name(tokens, t) else {
        return;
    };
    // Find the pattern end: `:` (annotation) or `=` (initializer).
    let mut j = t + 1;
    let mut depth = 0isize;
    let mut colon = None;
    let mut eq = None;
    while let Some(tok) = tokens.get(j) {
        match tok.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ":" if depth <= 0
                && colon.is_none()
                && eq.is_none()
                && !tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens
                    .get(j.saturating_sub(1))
                    .is_some_and(|p| p.is_punct(':')) =>
            {
                colon = Some(j)
            }
            "=" if depth <= 0 => {
                eq = Some(j);
                break;
            }
            ";" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut known: BTreeSet<String> = BTreeSet::new();
    if let (Some(c), Some(e)) = (colon, eq) {
        for tok in &tokens[c + 1..e] {
            if tok.kind == TokenKind::Ident && model.types.contains(tok.text.as_str()) {
                known.insert(tok.text.clone());
            }
        }
    }
    if known.is_empty() {
        // `let x = T::f(...)` constructor convention.
        if let Some(e) = eq {
            if let (Some(ty), Some(c1), Some(c2)) =
                (tokens.get(e + 1), tokens.get(e + 2), tokens.get(e + 3))
            {
                if ty.kind == TokenKind::Ident
                    && c1.is_punct(':')
                    && c2.is_punct(':')
                    && model.types.contains(ty.text.as_str())
                {
                    known.insert(ty.text.clone());
                }
            }
        }
    }
    if !known.is_empty() {
        locals.entry(name).or_default().extend(known);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(path: &str, src: &str) -> Vec<Finding> {
        analyze(&[(path.to_string(), src.to_string())])
    }

    const P: &str = "crates/parallel/src/fixture.rs";

    #[test]
    fn out_of_scope_paths_are_ignored() {
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) { let g = self.m.lock(); \
                   std::thread::sleep(d); } }\n";
        assert!(analyze_one("crates/model/src/x.rs", src).is_empty());
        assert!(analyze_one("crates/service/src/loadgen.rs", src).is_empty());
        assert!(!analyze_one(P, src).is_empty());
    }

    #[test]
    fn the_wal_module_is_in_concurrency_scope() {
        // The durability layer's file I/O runs under the router lock by
        // design (the durability point must precede the ack), so every
        // such hold needs a written safety argument — L2/L3 must keep
        // scanning wal.rs for unargued ones.
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) { let g = self.m.lock(); \
                   std::thread::sleep(d); } }\n";
        assert!(!analyze_one("crates/service/src/wal.rs", src).is_empty());
    }

    #[test]
    fn blocking_under_let_bound_guard_is_l2() {
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) {\n\
                   let g = self.m.lock();\nstd::thread::sleep(d);\n} }\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L2");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`m` guard"));
    }

    #[test]
    fn dropped_guard_clears_l2() {
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) {\n\
                   let g = self.m.lock();\ndrop(g);\nstd::thread::sleep(d);\n} }\n";
        assert!(analyze_one(P, src).is_empty());
    }

    #[test]
    fn block_scoped_guard_clears_l2() {
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) {\n\
                   { let g = self.m.lock(); }\nstd::thread::sleep(d);\n} }\n";
        assert!(analyze_one(P, src).is_empty());
    }

    #[test]
    fn condvar_wait_with_args_is_not_blocking() {
        let src = "struct S { m: Mutex<u32>, cv: Condvar }\nimpl S { fn f(&self) {\n\
                   let mut g = self.m.lock();\nwhile busy { self.cv.wait(&mut g); }\n} }\n";
        assert!(analyze_one(P, src).is_empty());
    }

    #[test]
    fn child_wait_with_empty_parens_is_blocking() {
        let src = "struct S { m: Mutex<u32>, child: Child }\nimpl S { fn f(&mut self) {\n\
                   let g = self.m.lock();\nlet _ = self.child.wait();\n} }\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L2");
    }

    #[test]
    fn stdin_lock_is_not_an_acquisition() {
        let src = "fn f() { let line = std::io::stdin().lock(); std::thread::sleep(d); }\n";
        assert!(analyze_one(P, src).is_empty());
    }

    #[test]
    fn transitive_blocking_through_a_resolved_call_is_l2() {
        let src = "struct S { m: Mutex<u32>, conn: Option<Client> }\n\
                   struct Client { x: u32 }\n\
                   impl Client { fn request(&mut self) { self.stream.read_line(buf); } }\n\
                   impl S { fn f(&self, conn: &mut Client) {\nlet g = self.m.lock();\n\
                   conn.request();\n} }\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L2");
        assert_eq!(hits[0].line, 6);
        assert!(
            hits[0].message.contains("Client::request"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn lock_cycle_across_two_functions_is_l1() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n\
                   fn fwd(&self) { let g = self.a.lock(); self.take_b(); }\n\
                   fn take_b(&self) { let g = self.b.lock(); }\n\
                   fn rev(&self) { let g = self.b.lock(); self.take_a(); }\n\
                   fn take_a(&self) { let g = self.a.lock(); }\n}\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L1");
        assert!(
            hits[0].message.contains("lock-order cycle"),
            "{}",
            hits[0].message
        );
        assert!(
            hits[0].message.contains("`a` -> `b`"),
            "{}",
            hits[0].message
        );
        assert!(
            hits[0].message.contains("`b` -> `a`"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn nested_acyclic_order_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n\
                   fn fwd(&self) { let g = self.a.lock(); self.take_b(); }\n\
                   fn take_b(&self) { let g = self.b.lock(); }\n}\n";
        assert!(analyze_one(P, src).is_empty());
    }

    #[test]
    fn undeadlined_stream_is_l3_and_depth1_coverage_clears_it() {
        let bad = "fn fetch(addr: &str) { let s = TcpStream::connect(addr); s.write_all(b); }\n";
        let hits = analyze_one("crates/service/src/fixture.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L3");
        assert_eq!(hits[0].line, 1);

        let own = "fn fetch(addr: &str) { let s = TcpStream::connect(addr); \
                   s.set_timeout(Some(d)); s.write_all(b); }\n";
        assert!(analyze_one("crates/service/src/fixture.rs", own).is_empty());

        let callee = "fn fetch(addr: &str) { let s = TcpStream::connect(addr); arm(&s); \
                      s.write_all(b); }\n\
                      fn arm(s: &TcpStream) { s.set_read_timeout(Some(d)); \
                      s.set_write_timeout(Some(d)); }\n";
        assert!(analyze_one("crates/service/src/fixture.rs", callee).is_empty());
    }

    #[test]
    fn accept_needs_coverage_too() {
        let src = "fn serve(l: &TcpListener) { let s = l.accept(); \
                   s.set_read_timeout(Some(d)); s.read_line(buf); }\n";
        let hits = analyze_one("crates/service/src/fixture.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L3");
        assert!(hits[0].message.contains("write"), "{}", hits[0].message);
    }

    #[test]
    fn enum_variant_pattern_types_the_binding() {
        let src = "enum Slot { Local(Shard) }\nstruct Shard { m: Mutex<u32> }\n\
                   struct W { slots: Vec<Slot>, o: Mutex<u32> }\n\
                   impl Shard { fn go(&self) { let g = self.m.lock(); } }\n\
                   impl W { fn f(&self, slot: &Slot) {\nlet g = self.o.lock();\n\
                   match slot { Slot::Local(shard) => shard.go(), }\n} }\n";
        // o -> m edge, no cycle, no blocking: clean.
        assert!(analyze_one(P, src).is_empty());
        // The typing actually fires: make `Shard::go` block and the call
        // under the live `o` guard becomes an L2.
        let src2 = src.replace(
            "fn go(&self) { let g = self.m.lock(); }",
            "fn go(&self) { std::thread::sleep(d); }",
        );
        let hits = analyze(&[(P.to_string(), src2)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L2");
        assert!(hits[0].message.contains("Shard::go"), "{}", hits[0].message);
    }

    #[test]
    fn static_lock_self_cycle_is_l1() {
        let src = "static REG: Mutex<u32> = Mutex::new(0);\n\
                   fn outer() { let g = REG.lock(); inner(); }\n\
                   fn inner() { let g = REG.lock(); }\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L1");
        assert!(
            hits[0].message.contains("`REG` -> `REG`"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn temporary_guard_lives_for_the_statement() {
        // The temporary guard from a lock in a match scrutinee is live
        // across the arms...
        let src = "struct S { m: Mutex<Option<u32>> }\nimpl S { fn f(&self) {\n\
                   match self.m.lock().as_ref() { Some(_) => std::thread::sleep(d), None => () };\n\
                   } }\n";
        let hits = analyze_one(P, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "L2");
        // ...but dies at the statement end.
        let src = "struct S { m: Mutex<u32> }\nimpl S { fn f(&self) {\n\
                   let v = *self.m.lock();\nstd::thread::sleep(d);\n} }\n";
        let hits = analyze_one(P, src);
        assert_eq!(
            hits.len(),
            1,
            "temporary must die at `;` — only the let-guard case remains: {hits:?}"
        );
    }
}
