//! Cross-file contract checks: C1 (ErrCode and frame opcodes ↔ protocol
//! doc), C2 (METRICS? keys and the typed metric catalog ↔ protocol doc),
//! C3 (vendored dependency allowlist).
//!
//! These rules take file *contents* (plus their workspace-relative paths
//! for diagnostics), so fixture tests can drive them with synthetic
//! documents; [`crate::run_check`] feeds them the real sources.

use crate::Finding;

// ----------------------------------------------------------------------
// C1 — ErrCode variants vs the protocol doc's error-code table
// ----------------------------------------------------------------------

/// Cross-checks the `ErrCode` wire tokens of `proto_src` against the error
/// code table of `doc`, both directions.
pub fn check_errcode_docs(
    proto_path: &str,
    proto_src: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code_tokens = errcode_wire_tokens(proto_src);
    let doc_tokens = doc_errcode_rows(doc);
    if code_tokens.is_empty() {
        findings.push(Finding {
            file: proto_path.to_string(),
            line: 0,
            rule: "C1",
            message: "found no `=> \"<token>\"` wire-token arms (ErrCode::as_str moved?)"
                .to_string(),
        });
        return findings;
    }
    for (token, line) in &code_tokens {
        if !doc_tokens.iter().any(|(t, _)| t == token) {
            findings.push(Finding {
                file: proto_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!(
                    "ErrCode wire token `{token}` is not in the error-code table of {doc_path}"
                ),
            });
        }
    }
    for (token, line) in &doc_tokens {
        if !code_tokens.iter().any(|(t, _)| t == token) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!(
                    "documented error code `{token}` has no ErrCode variant in {proto_path}"
                ),
            });
        }
    }
    findings
}

/// `=> "token"` arms (the `ErrCode::as_str` body) with their 1-based lines.
fn errcode_wire_tokens(src: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("=> \"") else {
            continue;
        };
        let rest = &line[pos + 4..];
        let Some(end) = rest.find('"') else {
            continue;
        };
        let token = &rest[..end];
        if is_wire_token(token) {
            out.push((token.to_string(), idx + 1));
        }
    }
    out
}

/// Error-code table rows (`| \`token\` | ... |`) of the section introduced
/// by a line containing "Error codes", up to the next `##` heading.
fn doc_errcode_rows(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.contains("Error codes") {
            in_section = true;
            continue;
        }
        if in_section && line.starts_with("##") {
            break;
        }
        if !in_section {
            continue;
        }
        if let Some(token) = line.trim().strip_prefix("| `") {
            if let Some(end) = token.find('`') {
                let token = &token[..end];
                if is_wire_token(token) {
                    out.push((token.to_string(), idx + 1));
                }
            }
        }
    }
    out
}

/// Wire tokens are lowercase kebab-case (`bad-request`, `overload`).
fn is_wire_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

// ----------------------------------------------------------------------
// C1 — request verbs vs the protocol doc's request headings
// ----------------------------------------------------------------------

/// Cross-checks the wire verbs of `Request::opcode` in `proto_src`
/// against the ``### `VERB ...` `` request headings of `doc`, both
/// directions — a verb the daemon dispatches must have a normative
/// section, and a documented verb must still exist in code.
pub fn check_verb_docs(
    proto_path: &str,
    proto_src: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let verbs = opcode_verbs(proto_src);
    if verbs.is_empty() {
        findings.push(Finding {
            file: proto_path.to_string(),
            line: 0,
            rule: "C1",
            message: "found no `=> \"<VERB>\"` arms inside `fn opcode` (Request::opcode moved?)"
                .to_string(),
        });
        return findings;
    }
    let headings = doc_verb_headings(doc);
    for (verb, line) in &verbs {
        if !headings.iter().any(|(v, _)| v == verb) {
            findings.push(Finding {
                file: proto_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!(
                    "request verb `{verb}` has no `### `{verb}`` section in {doc_path}"
                ),
            });
        }
    }
    for (verb, line) in &headings {
        if !verbs.iter().any(|(v, _)| v == verb) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!(
                    "documented request verb `{verb}` has no Request::opcode arm in {proto_path}"
                ),
            });
        }
    }
    findings
}

/// The `=> "VERB"` arms between `fn opcode` and the closing brace of its
/// match, with their 1-based lines.
fn opcode_verbs(src: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_fn = false;
    for (idx, line) in src.lines().enumerate() {
        if line.contains("fn opcode") {
            in_fn = true;
            continue;
        }
        if !in_fn {
            continue;
        }
        if line.trim() == "}" {
            break;
        }
        let Some(pos) = line.find("=> \"") else {
            continue;
        };
        let rest = &line[pos + 4..];
        let Some(end) = rest.find('"') else {
            continue;
        };
        let token = &rest[..end];
        if is_verb_token(token) {
            out.push((token.to_string(), idx + 1));
        }
    }
    out
}

/// The leading verb of every ``### `VERB ...` `` heading.
fn doc_verb_headings(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let Some(rest) = line.strip_prefix("### `") else {
            continue;
        };
        let Some(end) = rest.find('`') else {
            continue;
        };
        let verb = rest[..end].split_whitespace().next().unwrap_or("");
        if is_verb_token(verb) {
            out.push((verb.to_string(), idx + 1));
        }
    }
    out
}

/// Wire verbs are uppercase words, query verbs with a trailing `?`
/// (`TICK`, `SCHEDULE?`). `OP_*` frame names (underscores) are not verbs.
fn is_verb_token(s: &str) -> bool {
    let body = s.strip_suffix('?').unwrap_or(s);
    !body.is_empty() && body.bytes().all(|b| b.is_ascii_uppercase())
}

// ----------------------------------------------------------------------
// C1 — frame opcode constants vs the protocol doc's opcode table
// ----------------------------------------------------------------------

/// Cross-checks the `const OP_*` opcode constants of `framing_src` against
/// the opcode table rows of `doc` (`| \`0xNN\` | \`OP_NAME\` | ...`), both
/// directions, numeric values included — a client trusting the spec must
/// put the byte the server actually dispatches on.
pub fn check_opcode_docs(
    framing_path: &str,
    framing_src: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code = framing_opcodes(framing_src);
    if code.is_empty() {
        findings.push(Finding {
            file: framing_path.to_string(),
            line: 0,
            rule: "C1",
            message: "found no `const OP_<NAME>: u8 = 0x..;` opcode constants (framing \
                      module moved?)"
                .to_string(),
        });
        return findings;
    }
    let rows = doc_opcode_rows(doc);
    for (name, value, line) in &code {
        match rows.iter().find(|(n, _, _)| n == name) {
            None => findings.push(Finding {
                file: framing_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!("frame opcode `{name}` is not in the opcode table of {doc_path}"),
            }),
            Some((_, documented, _)) if documented != value => findings.push(Finding {
                file: framing_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!(
                    "frame opcode `{name}` is `{value}` in code but `{documented}` in {doc_path}"
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, _, line) in &rows {
        if !code.iter().any(|(n, _, _)| n == name) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: "C1",
                message: format!("documented opcode `{name}` has no constant in {framing_path}"),
            });
        }
    }
    findings
}

/// `const OP_<NAME>: u8 = <value>;` declarations (any visibility) with
/// their 1-based lines, as `(name, value, line)`.
fn framing_opcodes(src: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("const OP_") else {
            continue;
        };
        let rest = &line[pos + "const ".len()..];
        let Some((name, after)) = rest.split_once(':') else {
            continue;
        };
        let Some((_, value)) = after.split_once('=') else {
            continue;
        };
        let value = value.trim().trim_end_matches(';').trim();
        if !value.is_empty() {
            out.push((name.trim().to_string(), value.to_string(), idx + 1));
        }
    }
    out
}

/// Opcode table rows: `| \`0xNN\` | \`OP_NAME\` | ...` anywhere in the doc,
/// as `(name, value, line)`.
fn doc_opcode_rows(doc: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with("| `0x") {
            continue;
        }
        let mut ticked = trimmed.split('`');
        let (value, name) = (ticked.nth(1), ticked.nth(1));
        if let (Some(value), Some(name)) = (value, name) {
            if name.starts_with("OP_") {
                out.push((name.to_string(), value.to_string(), idx + 1));
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// C2 — METRICS? keys vs the protocol doc's METRICS? section
// ----------------------------------------------------------------------

/// Cross-checks the keys emitted by the `Request::Metrics` arm of
/// `server_src` against the backticked keys of the doc's `METRICS?`
/// section, both directions.
pub fn check_metrics_docs(
    server_path: &str,
    server_src: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let emitted = emitted_metrics_keys(server_src);
    if emitted.is_empty() {
        findings.push(Finding {
            file: server_path.to_string(),
            line: 0,
            rule: "C2",
            message: "could not locate the Request::Metrics handler's key tuples".to_string(),
        });
        return findings;
    }
    let documented = doc_metrics_keys(doc);
    for (key, line) in &emitted {
        if !documented.iter().any(|(k, _)| k == key) {
            findings.push(Finding {
                file: server_path.to_string(),
                line: *line,
                rule: "C2",
                message: format!(
                    "METRICS? emits `{key}` but the METRICS? section of {doc_path} does not \
                     document it"
                ),
            });
        }
    }
    for (key, line) in &documented {
        if !emitted.iter().any(|(k, _)| k == key) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: "C2",
                message: format!("documented METRICS? key `{key}` is not emitted by {server_path}"),
            });
        }
    }
    findings
}

/// The key names of the `("key", <value>)` tuples between
/// `Request::Metrics` and the `Reply::Data` that closes the arm: every
/// string literal in the span whose content has metrics-key shape
/// (rustfmt may put a tuple's key literal on its own line, so the scan is
/// literal-based rather than anchored on `("`).
fn emitted_metrics_keys(src: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_arm = false;
    for (idx, line) in src.lines().enumerate() {
        if line.contains("Request::Metrics") {
            in_arm = true;
            continue;
        }
        if !in_arm {
            continue;
        }
        if line.contains("Reply::Data") {
            break;
        }
        for (i, literal) in line.split('"').enumerate() {
            if i % 2 == 1 && is_metrics_key(literal) {
                out.push((literal.to_string(), idx + 1));
            }
        }
    }
    out
}

/// Backticked snake_case tokens of the `### \`METRICS?\`` doc section.
/// Generic placeholder words (`key`, `value`, `n`) are not keys.
fn doc_metrics_keys(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.starts_with("###") && line.contains("METRICS?") {
            in_section = true;
            continue;
        }
        if in_section && (line.starts_with("## ") || line.starts_with("### ")) {
            break;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find('`') {
            rest = &rest[pos + 1..];
            let Some(end) = rest.find('`') else {
                break;
            };
            let token = &rest[..end];
            if is_metrics_key(token) && !matches!(token, "key" | "value" | "n") {
                out.push((token.to_string(), idx + 1));
            }
            rest = &rest[end + 1..];
        }
    }
    out
}

/// Metrics keys are lowercase snake_case (`oracle_marginals`, `greedy_us`).
fn is_metrics_key(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

// ----------------------------------------------------------------------
// C2 — metric catalog vs the protocol doc's Metrics schema table
// ----------------------------------------------------------------------

/// One metric family as declared on either side of the schema contract:
/// name, kind, label key, and legacy `METRICS?` alias (empty = none).
struct SchemaEntry {
    name: String,
    kind: String,
    label: String,
    alias: String,
    line: usize,
}

/// Cross-checks the `CATALOG` of `crates/metrics/src/catalog.rs` against
/// the `## Metrics schema` table of the protocol doc: every family must be
/// documented with the same kind, label, and legacy alias (and vice
/// versa); names must follow the unit-suffix rules; labels must come from
/// the schema vocabulary; and the legacy aliases must be exactly the
/// documented `METRICS?` keys, each claimed once.
pub fn check_metrics_schema(
    catalog_path: &str,
    catalog_src: &str,
    doc_path: &str,
    doc: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code = catalog_entries(catalog_src);
    if code.is_empty() {
        findings.push(Finding {
            file: catalog_path.to_string(),
            line: 0,
            rule: "C2",
            message: "found no counter(/gauge(/gauge_max(/histogram( entries (CATALOG moved?)"
                .to_string(),
        });
        return findings;
    }
    let rows = doc_schema_rows(doc);
    if rows.is_empty() {
        findings.push(Finding {
            file: doc_path.to_string(),
            line: 0,
            rule: "C2",
            message: "found no `| `haste_...` |` rows under a `## Metrics schema` heading"
                .to_string(),
        });
        return findings;
    }

    for entry in &code {
        findings.extend(schema_shape_findings(catalog_path, entry));
        match rows.iter().find(|row| row.name == entry.name) {
            None => findings.push(Finding {
                file: catalog_path.to_string(),
                line: entry.line,
                rule: "C2",
                message: format!(
                    "metric `{}` is not in the Metrics schema table of {doc_path}",
                    entry.name
                ),
            }),
            Some(row) => {
                for (field, ours, documented) in [
                    ("kind", &entry.kind, &row.kind),
                    ("label", &entry.label, &row.label),
                    ("legacy alias", &entry.alias, &row.alias),
                ] {
                    if ours != documented {
                        findings.push(Finding {
                            file: catalog_path.to_string(),
                            line: entry.line,
                            rule: "C2",
                            message: format!(
                                "metric `{}` has {field} `{ours}` in the catalog but \
                                 `{documented}` in {doc_path}",
                                entry.name
                            ),
                        });
                    }
                }
            }
        }
    }
    for row in &rows {
        if !code.iter().any(|entry| entry.name == row.name) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: row.line,
                rule: "C2",
                message: format!(
                    "documented metric `{}` has no CATALOG entry in {catalog_path}",
                    row.name
                ),
            });
        }
    }

    // Legacy aliases must be exactly the documented METRICS? keys: every
    // alias a real key, every key claimed, no key claimed twice.
    let legacy = doc_metrics_keys(doc);
    let mut claimed: Vec<&str> = Vec::new();
    for entry in &code {
        if entry.alias.is_empty() {
            continue;
        }
        if claimed.contains(&entry.alias.as_str()) {
            findings.push(Finding {
                file: catalog_path.to_string(),
                line: entry.line,
                rule: "C2",
                message: format!(
                    "legacy alias `{}` is claimed by more than one metric",
                    entry.alias
                ),
            });
        }
        claimed.push(&entry.alias);
        if !legacy.is_empty() && !legacy.iter().any(|(key, _)| *key == entry.alias) {
            findings.push(Finding {
                file: catalog_path.to_string(),
                line: entry.line,
                rule: "C2",
                message: format!(
                    "legacy alias `{}` of metric `{}` is not a documented METRICS? key",
                    entry.alias, entry.name
                ),
            });
        }
    }
    for (key, line) in &legacy {
        if !claimed.contains(&key.as_str()) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: "C2",
                message: format!(
                    "legacy METRICS? key `{key}` has no aliased metric in {catalog_path}"
                ),
            });
        }
    }
    findings
}

/// The naming rules of the schema: `haste_`-prefixed snake_case, counters
/// end `_total`, histograms carry a unit suffix (`_us`/`_records`), gauges
/// name the unit they count, labels come from the fixed vocabulary.
fn schema_shape_findings(catalog_path: &str, entry: &SchemaEntry) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut flag = |message: String| {
        findings.push(Finding {
            file: catalog_path.to_string(),
            line: entry.line,
            rule: "C2",
            message,
        })
    };
    if !entry.name.starts_with("haste_") || !is_metrics_key(&entry.name) {
        flag(format!(
            "metric `{}` does not match the `haste_<subsystem>_<name>_<unit>` naming schema",
            entry.name
        ));
    }
    let suffix_ok = match entry.kind.as_str() {
        "counter" => entry.name.ends_with("_total"),
        "histogram" => entry.name.ends_with("_us") || entry.name.ends_with("_records"),
        "gauge" => ["_slots", "_tasks", "_threads", "_shards"]
            .iter()
            .any(|suffix| entry.name.ends_with(suffix)),
        _ => true, // unknown kinds surface as a kind mismatch against the doc
    };
    if !suffix_ok {
        flag(format!(
            "metric `{}` violates the {} unit-suffix rule of the naming schema",
            entry.name, entry.kind
        ));
    }
    if !matches!(
        entry.label.as_str(),
        "" | "cell" | "opcode" | "err_code" | "tenant"
    ) {
        flag(format!(
            "metric `{}` uses label `{}` outside the schema vocabulary (cell, opcode, \
             err_code, tenant)",
            entry.name, entry.label
        ));
    }
    findings
}

/// The `counter(`/`gauge(`/`gauge_max(`/`histogram(` entries of the
/// catalog source, one per line (the CATALOG is formatted that way on
/// purpose). Arguments are positional string literals: name, label, then
/// — for counters and gauges — the legacy alias; histograms have none.
fn catalog_entries(src: &str) -> Vec<SchemaEntry> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        let kind = if trimmed.starts_with("counter(\"") {
            "counter"
        } else if trimmed.starts_with("gauge(\"") || trimmed.starts_with("gauge_max(\"") {
            "gauge"
        } else if trimmed.starts_with("histogram(\"") {
            "histogram"
        } else {
            continue;
        };
        let literals: Vec<&str> = trimmed
            .split('"')
            .enumerate()
            .filter_map(|(i, part)| (i % 2 == 1).then_some(part))
            .collect();
        // name, label, [alias,] help — the trailing help text is not schema.
        if literals.len() < 3 {
            continue;
        }
        out.push(SchemaEntry {
            name: literals[0].to_string(),
            label: literals[1].to_string(),
            alias: if kind == "histogram" {
                String::new()
            } else {
                literals[2].to_string()
            },
            kind: kind.to_string(),
            line: idx + 1,
        });
    }
    out
}

/// Rows of the `## Metrics schema` table, up to the next `## ` heading:
/// `| \`name\` | kind | \`label\` | \`alias\` | help |` with `—` for an
/// absent label or alias.
fn doc_schema_rows(doc: &str) -> Vec<SchemaEntry> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.starts_with("## ") && line.contains("Metrics schema") {
            in_section = true;
            continue;
        }
        if in_section && line.starts_with("## ") {
            break;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim();
        if !trimmed.starts_with("| `haste_") {
            continue;
        }
        let cells: Vec<String> = trimmed
            .trim_matches('|')
            .split('|')
            .map(|cell| cell.trim().trim_matches('`').to_string())
            .collect();
        if cells.len() < 4 {
            continue;
        }
        let blank_if_dash = |cell: &str| {
            if cell == "—" {
                String::new()
            } else {
                cell.to_string()
            }
        };
        out.push(SchemaEntry {
            name: cells[0].clone(),
            kind: cells[1].clone(),
            label: blank_if_dash(&cells[2]),
            alias: blank_if_dash(&cells[3]),
            line: idx + 1,
        });
    }
    out
}

// ----------------------------------------------------------------------
// C3 — vendored dependency allowlist
// ----------------------------------------------------------------------

/// The manifest inventory [`check_vendor_allowlist`] audits: file contents
/// keyed by workspace-relative path, plus the `vendor/` directory listing.
pub struct ManifestSet {
    /// `("Cargo.toml", <content>)` — the workspace root manifest.
    pub root: (String, String),
    /// Member manifests (`crates/*/Cargo.toml`, `vendor/*/Cargo.toml`).
    pub members: Vec<(String, String)>,
    /// Directory names under `vendor/`.
    pub vendor_dirs: Vec<String>,
}

/// Enforces the offline-build contract over the manifest inventory:
/// workspace dependencies must resolve to `crates/` or `vendor/` paths,
/// member dependencies must be `workspace = true` or in-tree paths, and
/// every `vendor/` directory must be referenced (from the workspace
/// allowlist or by a sibling vendored crate).
pub fn check_vendor_allowlist(set: &ManifestSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (root_path, root_src) = &set.root;

    let mut allowlisted_vendor = Vec::new();
    for entry in toml_dependency_entries(root_src, "workspace.dependencies") {
        match entry.path_value() {
            Some(path) if path.starts_with("crates/") => {}
            Some(path) if path.starts_with("vendor/") => {
                allowlisted_vendor.push(path["vendor/".len()..].to_string());
            }
            Some(path) => findings.push(Finding {
                file: root_path.clone(),
                line: entry.line,
                rule: "C3",
                message: format!(
                    "workspace dependency `{}` points outside the tree (`{path}`)",
                    entry.name
                ),
            }),
            None => findings.push(Finding {
                file: root_path.clone(),
                line: entry.line,
                rule: "C3",
                message: format!(
                    "workspace dependency `{}` has no in-tree `path` — it would resolve to \
                     crates.io, which cannot build offline",
                    entry.name
                ),
            }),
        }
    }

    for (member_path, member_src) in &set.members {
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for entry in toml_dependency_entries(member_src, section) {
                let ok = entry.value.contains("workspace = true") || entry.path_value().is_some();
                if !ok {
                    findings.push(Finding {
                        file: member_path.clone(),
                        line: entry.line,
                        rule: "C3",
                        message: format!(
                            "dependency `{}` is neither `workspace = true` nor an in-tree \
                             path — it would resolve to crates.io, which cannot build \
                             offline",
                            entry.name
                        ),
                    });
                }
            }
        }
    }

    for dir in &set.vendor_dirs {
        let referenced = allowlisted_vendor.contains(dir)
            || set.members.iter().any(|(path, src)| {
                path.starts_with("vendor/") && src.contains(&format!("path = \"../{dir}\""))
            });
        if !referenced {
            findings.push(Finding {
                file: format!("vendor/{dir}/Cargo.toml"),
                line: 0,
                rule: "C3",
                message: format!(
                    "vendored crate `{dir}` is not on the workspace dependency allowlist \
                     of {root_path} and no vendored sibling depends on it"
                ),
            });
        }
    }

    findings
}

/// One `name = <value>` entry of a dependency section.
struct DepEntry {
    name: String,
    value: String,
    line: usize,
}

impl DepEntry {
    /// The `path = "..."` value, if the entry has one.
    fn path_value(&self) -> Option<&str> {
        let rest = self.value.split("path = \"").nth(1)?;
        rest.split('"').next()
    }
}

/// Entries of one `[section]` of a (simple, inline-table style) manifest.
/// Dotted sub-tables (`[dependencies.foo]`) are not in this workspace's
/// style and are not parsed.
fn toml_dependency_entries(src: &str, section: &str) -> Vec<DepEntry> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_section = trimmed == format!("[{section}]");
            continue;
        }
        if !in_section || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((name, value)) = trimmed.split_once('=') else {
            continue;
        };
        out.push(DepEntry {
            name: name.trim().to_string(),
            value: value.trim().to_string(),
            line: idx + 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = r#"
        impl ErrCode {
            pub fn as_str(self) -> &'static str {
                match self {
                    ErrCode::BadRequest => "bad-request",
                    ErrCode::Overload => "overload",
                }
            }
        }
    "#;

    const DOC: &str = "\
# protocol

Error codes:

| Code | Meaning |
|---|---|
| `bad-request` | Malformed. |
| `overload` | Full. |

## Requests

### `METRICS?`

Keys: `clock`, `greedy_us`. Reply: `DATA <n>` + lines.

### `BYE`
";

    #[test]
    fn errcode_consistency_passes_on_matching_sets() {
        assert!(check_errcode_docs("p.rs", PROTO, "d.md", DOC).is_empty());
    }

    #[test]
    fn errcode_mismatches_fire_both_directions() {
        let proto_extra = PROTO.replace(
            "ErrCode::Overload => \"overload\",",
            "ErrCode::Overload => \"overload\",\nErrCode::Oops => \"oops\",",
        );
        let f = check_errcode_docs("p.rs", &proto_extra, "d.md", DOC);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`oops`"), "{f:?}");
        assert_eq!(f[0].file, "p.rs");

        let doc_extra = DOC.replace(
            "| `overload` | Full. |",
            "| `overload` | Full. |\n| `ghost` | Gone. |",
        );
        let f = check_errcode_docs("p.rs", PROTO, "d.md", &doc_extra);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`ghost`"), "{f:?}");
        assert_eq!(f[0].file, "d.md");
    }

    const VERBS: &str = r#"
        impl Request {
            pub fn opcode(&self) -> &'static str {
                match self {
                    Request::Hello(_) => "HELLO",
                    Request::Metrics => "METRICS?",
                    Request::Bye => "BYE",
                }
            }
        }
    "#;

    #[test]
    fn verb_consistency_passes_on_matching_sets() {
        // DOC has `### `METRICS?`` and `### `BYE`` headings; add HELLO.
        let doc = DOC.replace("## Requests\n", "## Requests\n\n### `HELLO <version>`\n");
        let f = check_verb_docs("p.rs", VERBS, "d.md", &doc);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn verb_mismatches_fire_both_directions() {
        let doc = DOC.replace("## Requests\n", "## Requests\n\n### `HELLO <version>`\n");
        let code_extra = VERBS.replace(
            "Request::Bye => \"BYE\",",
            "Request::Bye => \"BYE\",\nRequest::Tenant { .. } => \"TENANT\",",
        );
        let f = check_verb_docs("p.rs", &code_extra, "d.md", &doc);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`TENANT`"), "{f:?}");
        assert_eq!(f[0].file, "p.rs");

        let doc_extra = doc + "\n### `RESHARD SPLIT <cell>`\n";
        let f = check_verb_docs("p.rs", VERBS, "d.md", &doc_extra);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`RESHARD`"), "{f:?}");
        assert_eq!(f[0].file, "d.md");
    }

    #[test]
    fn verb_scan_ignores_arms_outside_fn_opcode() {
        // `=> "OK"` in a Reply::serialize body must not register as a verb.
        let code = VERBS.to_string()
            + r#"
        impl Reply {
            pub fn serialize(&self) -> String {
                match self {
                    Reply::Empty => "OK",
                }
            }
        }
    "#;
        let doc = DOC.replace("## Requests\n", "## Requests\n\n### `HELLO <version>`\n");
        let f = check_verb_docs("p.rs", &code, "d.md", &doc);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_opcode_arms_are_a_finding_not_a_pass() {
        let f = check_verb_docs("p.rs", "// nothing here\n", "d.md", DOC);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("fn opcode"), "{f:?}");
    }

    const FRAMING: &str = "\
/// Client→server: a text request.
pub(crate) const OP_TEXT: u8 = 0x01;
/// Server→client: a text reply.
pub(crate) const OP_REPLY: u8 = 0x81;
";

    const OPDOC: &str = "\
# protocol

## Protocol v3

| Opcode | Name | Direction |
|---|---|---|
| `0x01` | `OP_TEXT` | client → server |
| `0x81` | `OP_REPLY` | server → client |
";

    #[test]
    fn opcode_consistency_passes_on_matching_sets() {
        assert!(check_opcode_docs("f.rs", FRAMING, "d.md", OPDOC).is_empty());
    }

    #[test]
    fn opcode_mismatches_fire_both_directions_and_on_values() {
        let code_extra = format!("{FRAMING}pub(crate) const OP_PING: u8 = 0x03;\n");
        let f = check_opcode_docs("f.rs", &code_extra, "d.md", OPDOC);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`OP_PING`"), "{f:?}");
        assert_eq!(f[0].file, "f.rs");

        let doc_extra = OPDOC.to_string() + "| `0x03` | `OP_GHOST` | client → server |\n";
        let f = check_opcode_docs("f.rs", FRAMING, "d.md", &doc_extra);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`OP_GHOST`"), "{f:?}");
        assert_eq!(f[0].file, "d.md");

        let doc_wrong = OPDOC.replace("| `0x81` | `OP_REPLY` |", "| `0x82` | `OP_REPLY` |");
        let f = check_opcode_docs("f.rs", FRAMING, "d.md", &doc_wrong);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`0x81` in code but `0x82`"), "{f:?}");
    }

    #[test]
    fn missing_opcode_constants_are_a_finding_not_a_pass() {
        let f = check_opcode_docs("f.rs", "// nothing here\n", "d.md", OPDOC);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("opcode constants"), "{f:?}");
    }

    const SERVER: &str = r#"
        Request::Metrics => match engine {
            Some(engine) => {
                for (key, value) in [
                    ("clock", engine.clock().to_string()),
                    ("greedy_us", metrics.greedy.to_string()),
                ] {
                }
                Reply::Data(payload)
            }
        },
    "#;

    #[test]
    fn metrics_consistency_passes_on_matching_sets() {
        assert!(check_metrics_docs("s.rs", SERVER, "d.md", DOC).is_empty());
    }

    #[test]
    fn metrics_mismatches_fire_both_directions() {
        let server_extra = SERVER.replace(
            "(\"clock\", engine.clock().to_string()),",
            "(\"clock\", engine.clock().to_string()),\n(\"mystery\", x.to_string()),",
        );
        let f = check_metrics_docs("s.rs", &server_extra, "d.md", DOC);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`mystery`"), "{f:?}");

        let doc_extra = DOC.replace("`greedy_us`", "`greedy_us`, `phantom`");
        let f = check_metrics_docs("s.rs", SERVER, "d.md", &doc_extra);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`phantom`"), "{f:?}");
    }

    #[test]
    fn metrics_doc_scan_stops_at_the_next_section() {
        // `bye` would parse as a key if the section did not end at `### BYE`.
        let doc = DOC.replace("### `BYE`\n", "### `BYE`\n\nSends `bye` back.\n");
        assert!(check_metrics_docs("s.rs", SERVER, "d.md", &doc).is_empty());
    }

    const CATALOG: &str = r#"
pub const CATALOG: &[MetricSpec] = &[
    counter("haste_service_requests_total", "opcode", "", "Requests."),
    histogram("haste_service_request_duration_us", "opcode", "Latency."),
    gauge_max("haste_engine_clock_slots", "", "clock", "Clock."),
    counter("haste_engine_greedy_us_total", "", "greedy_us", "Greedy time."),
];
"#;

    /// The fixture protocol doc plus a matching `## Metrics schema` table.
    fn schema_doc() -> String {
        DOC.to_string()
            + "\n## Metrics schema\n\n\
               | Family | Kind | Label | Legacy key | Meaning |\n\
               |---|---|---|---|---|\n\
               | `haste_service_requests_total` | counter | `opcode` | — | Requests. |\n\
               | `haste_service_request_duration_us` | histogram | `opcode` | — | Latency. |\n\
               | `haste_engine_clock_slots` | gauge | — | `clock` | Clock. |\n\
               | `haste_engine_greedy_us_total` | counter | — | `greedy_us` | Greedy time. |\n"
    }

    #[test]
    fn metrics_schema_passes_on_matching_sets() {
        let doc = schema_doc();
        let f = check_metrics_schema("c.rs", CATALOG, "d.md", &doc);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn metrics_schema_mismatches_fire_both_directions() {
        let extra = CATALOG.replace(
            "counter(\"haste_service_requests_total\", \"opcode\", \"\", \"Requests.\"),",
            "counter(\"haste_service_requests_total\", \"opcode\", \"\", \"Requests.\"),\n    \
             counter(\"haste_service_drops_total\", \"\", \"\", \"Drops.\"),",
        );
        let doc = schema_doc();
        let f = check_metrics_schema("c.rs", &extra, "d.md", &doc);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("`haste_service_drops_total`"),
            "{f:?}"
        );
        assert_eq!(f[0].file, "c.rs");

        let doc_extra = doc + "| `haste_router_ghost_total` | counter | — | — | Ghost. |\n";
        let f = check_metrics_schema("c.rs", CATALOG, "d.md", &doc_extra);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`haste_router_ghost_total`"), "{f:?}");
        assert_eq!(f[0].file, "d.md");
    }

    #[test]
    fn metrics_schema_field_mismatches_fire() {
        let doc = schema_doc().replace(
            "| `haste_service_request_duration_us` | histogram | `opcode` |",
            "| `haste_service_request_duration_us` | histogram | `cell` |",
        );
        let f = check_metrics_schema("c.rs", CATALOG, "d.md", &doc);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message
                .contains("label `opcode` in the catalog but `cell`"),
            "{f:?}"
        );
    }

    #[test]
    fn metrics_schema_unit_suffix_and_label_rules_fire() {
        let bad = CATALOG.replace(
            "histogram(\"haste_service_request_duration_us\", \"opcode\", \"Latency.\"),",
            "histogram(\"haste_service_request_duration\", \"shard\", \"Latency.\"),",
        );
        let doc = schema_doc().replace(
            "| `haste_service_request_duration_us` | histogram | `opcode` |",
            "| `haste_service_request_duration` | histogram | `shard` |",
        );
        let f = check_metrics_schema("c.rs", &bad, "d.md", &doc);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("unit-suffix")), "{f:?}");
        assert!(
            f.iter().any(|f| f.message.contains("schema vocabulary")),
            "{f:?}"
        );
    }

    #[test]
    fn metrics_schema_alias_contract_fires() {
        // Renaming the alias on both sides breaks the legacy-key mapping
        // twice over: `tick` is not a METRICS? key, `clock` goes unclaimed.
        let bad = CATALOG.replace(
            "gauge_max(\"haste_engine_clock_slots\", \"\", \"clock\", \"Clock.\"),",
            "gauge_max(\"haste_engine_clock_slots\", \"\", \"tick\", \"Clock.\"),",
        );
        let doc = schema_doc().replace(
            "| `haste_engine_clock_slots` | gauge | — | `clock` |",
            "| `haste_engine_clock_slots` | gauge | — | `tick` |",
        );
        let f = check_metrics_schema("c.rs", &bad, "d.md", &doc);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(
            f.iter()
                .any(|f| f.message.contains("not a documented METRICS? key")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|f| f.message.contains("has no aliased metric")),
            "{f:?}"
        );
    }

    #[test]
    fn duplicate_legacy_alias_fires() {
        let bad = CATALOG.replace(
            "counter(\"haste_engine_greedy_us_total\", \"\", \"greedy_us\", \"Greedy time.\"),",
            "counter(\"haste_engine_greedy_us_total\", \"\", \"greedy_us\", \"Greedy time.\"),\n    \
             counter(\"haste_engine_rushed_us_total\", \"\", \"greedy_us\", \"Rushed time.\"),",
        );
        let doc = schema_doc().replace(
            "| `haste_engine_greedy_us_total` | counter | — | `greedy_us` | Greedy time. |\n",
            "| `haste_engine_greedy_us_total` | counter | — | `greedy_us` | Greedy time. |\n\
             | `haste_engine_rushed_us_total` | counter | — | `greedy_us` | Rushed time. |\n",
        );
        let f = check_metrics_schema("c.rs", &bad, "d.md", &doc);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("claimed by more than one metric"),
            "{f:?}"
        );
    }

    #[test]
    fn missing_catalog_entries_are_a_finding_not_a_pass() {
        let f = check_metrics_schema("c.rs", "// nothing here\n", "d.md", &schema_doc());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("CATALOG"), "{f:?}");
    }

    #[test]
    fn missing_schema_table_is_a_finding_not_a_pass() {
        let f = check_metrics_schema("c.rs", CATALOG, "d.md", DOC);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Metrics schema"), "{f:?}");
        assert_eq!(f[0].file, "d.md");
    }

    fn base_set() -> ManifestSet {
        ManifestSet {
            root: (
                "Cargo.toml".to_string(),
                "[workspace.dependencies]\n\
                 haste-model = { path = \"crates/model\" }\n\
                 rand = { path = \"vendor/rand\", default-features = false }\n"
                    .to_string(),
            ),
            members: vec![(
                "crates/model/Cargo.toml".to_string(),
                "[dependencies]\nrand = { workspace = true }\n".to_string(),
            )],
            vendor_dirs: vec!["rand".to_string()],
        }
    }

    #[test]
    fn vendor_allowlist_passes_on_clean_set() {
        assert!(check_vendor_allowlist(&base_set()).is_empty());
    }

    #[test]
    fn bare_version_workspace_dep_fires() {
        let mut set = base_set();
        set.root.1.push_str("serde_json = \"1.0\"\n");
        let f = check_vendor_allowlist(&set);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`serde_json`"), "{f:?}");
    }

    #[test]
    fn bare_version_member_dep_fires() {
        let mut set = base_set();
        set.members[0].1.push_str("regex = \"1\"\n");
        let f = check_vendor_allowlist(&set);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`regex`"), "{f:?}");
    }

    #[test]
    fn unreferenced_vendor_dir_fires_unless_a_sibling_uses_it() {
        let mut set = base_set();
        set.vendor_dirs.push("orphan".to_string());
        let f = check_vendor_allowlist(&set);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`orphan`"), "{f:?}");

        set.members.push((
            "vendor/rand/Cargo.toml".to_string(),
            "[dependencies]\norphan = { path = \"../orphan\" }\n".to_string(),
        ));
        assert!(check_vendor_allowlist(&set).is_empty());
    }
}
