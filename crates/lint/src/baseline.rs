//! Finding baselines: accept today's findings, gate only on new ones.
//!
//! A baseline file holds one fingerprint per accepted finding. The
//! fingerprint is FNV-1a (64-bit) over `file|rule|message` — deliberately
//! *not* over the line number, so unrelated edits that shift a finding up
//! or down the file do not resurrect it. The file format is line-oriented
//! and diff-friendly:
//!
//! ```text
//! # haste-lint baseline — `cargo run -p haste-lint -- baseline --out <file>`
//! 9c4f0a2b8d1e6f37 crates/service/src/router.rs L2
//! ```
//!
//! The trailing `<file> <rule>` columns are commentary for reviewers; only
//! the fingerprint is consulted when filtering. CI keeps the committed
//! baseline empty — the mechanism exists for bootstrapping new rules on a
//! dirty tree, not as a permanent dumping ground.

use std::collections::BTreeSet;

use crate::Finding;

const HEADER: &str =
    "# haste-lint baseline — regenerate with `cargo run -p haste-lint -- baseline --out <file>`";

/// FNV-1a 64-bit over `file|rule|message`.
pub fn fingerprint(finding: &Finding) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in finding
        .file
        .bytes()
        .chain([b'|'])
        .chain(finding.rule.bytes())
        .chain([b'|'])
        .chain(finding.message.bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a baseline accepting every finding in `findings`.
pub fn render(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| format!("{:016x} {} {}", fingerprint(f), f.file, f.rule))
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(HEADER);
    out.push('\n');
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses a baseline file into its fingerprint set. Blank lines and `#`
/// comments are ignored; anything else must start with a 16-hex-digit
/// fingerprint.
pub fn parse(text: &str) -> Result<BTreeSet<u64>, String> {
    let mut set = BTreeSet::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let token = line.split_whitespace().next().unwrap_or("");
        if token.len() != 16 {
            return Err(format!(
                "baseline line {}: expected a 16-hex fingerprint, got `{token}`",
                index + 1
            ));
        }
        match u64::from_str_radix(token, 16) {
            Ok(value) => {
                set.insert(value);
            }
            Err(_) => {
                return Err(format!(
                    "baseline line {}: `{token}` is not hexadecimal",
                    index + 1
                ))
            }
        }
    }
    Ok(set)
}

/// Splits findings into `(surviving, accepted-by-baseline)`.
pub fn split(findings: Vec<Finding>, baseline: &BTreeSet<u64>) -> (Vec<Finding>, Vec<Finding>) {
    findings
        .into_iter()
        .partition(|f| !baseline.contains(&fingerprint(f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, rule: &'static str, message: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: message.to_string(),
        }
    }

    #[test]
    fn fingerprint_ignores_line_number() {
        let a = finding("f.rs", 10, "L2", "m");
        let b = finding("f.rs", 99, "L2", "m");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = finding("f.rs", 10, "L3", "m");
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            finding("b.rs", 2, "L3", "no deadline"),
            finding("a.rs", 1, "L2", "blocking"),
            finding("a.rs", 5, "L2", "blocking"), // same fingerprint as above
        ];
        let text = render(&findings);
        assert!(text.starts_with("# haste-lint baseline"));
        assert_eq!(text.lines().count(), 3); // header + 2 unique fingerprints
        let set = parse(&text).expect("round trip parses");
        assert_eq!(set.len(), 2);
        let (live, accepted) = split(findings, &set);
        assert!(live.is_empty());
        assert_eq!(accepted.len(), 3);
    }

    #[test]
    fn split_keeps_unknown_findings() {
        let known = finding("a.rs", 1, "L2", "old");
        let set = parse(&render(std::slice::from_ref(&known))).unwrap();
        let fresh = finding("a.rs", 1, "L2", "new");
        let (live, accepted) = split(vec![known, fresh.clone()], &set);
        assert_eq!(live, vec![fresh]);
        assert_eq!(accepted.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("# ok\n\n").unwrap().is_empty());
        assert!(parse("deadbeef a.rs L2").is_err()); // 8 digits, not 16
        assert!(parse("zzzzzzzzzzzzzzzz a.rs L2").is_err());
    }
}
