//! A small token-level Rust parser for the concurrency rules (L1–L3).
//!
//! Two layers, both deliberately far short of a real Rust front end:
//!
//! * [`tokenize`] — a comment/string-aware lexer producing a flat token
//!   stream with byte offsets (`&src[tok.start..tok.end]` is always the
//!   token text; a property test asserts the round trip).
//! * [`FileIndex::build`] — a structural pass over the token stream that
//!   brace-matches item bodies and records what the concurrency analysis
//!   needs: struct fields (for lock identity and receiver typing), enum
//!   tuple variants (for `Variant(binding) =>` patterns), impl blocks
//!   (for `self` typing), and function declarations with parameter types
//!   and body token ranges.
//!
//! Like `source.rs`, this is heuristic by design: anything it cannot
//! resolve is simply not analyzed further, and every rule built on top
//! carries the standard suppression escape hatch.

use std::ops::Range;

/// Token classes the analysis distinguishes. Keywords are plain `Ident`s;
/// multi-character operators arrive as consecutive one-character `Punct`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `submit`, `Mutex`, ...).
    Ident,
    /// Numeric literal (integer or float, suffix included).
    Number,
    /// String literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// One punctuation character.
    Punct,
}

/// One lexed token. `start..end` are byte offsets into the source; `line`
/// is 1-based.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `word`.
    pub fn is(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// Lexes `src`, skipping whitespace and comments (line, and nested block
/// comments). Never fails: bytes that fit no class become one-character
/// `Punct` tokens.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r", r#"..."#, b", br#"..."#, b'x'.
        if (b == b'r' || b == b'b') && !is_ident_byte(prev_byte(bytes, i)) {
            if let Some(tok) = lex_prefixed_literal(src, i, line) {
                line = tok.1;
                i = tok.0.end;
                tokens.push(tok.0);
                continue;
            }
        }
        if b == b'"' {
            let (tok, new_line) = lex_string(src, i, line);
            line = new_line;
            i = tok.end;
            tokens.push(tok);
            continue;
        }
        if b == b'\'' {
            let tok = lex_char_or_lifetime(src, i, line);
            i = tok.end;
            tokens.push(tok);
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            tokens.push(token(TokenKind::Ident, src, start, i, line));
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            // A `.` continues the number only when a digit follows —
            // `1.5` is one token, `1.to_string()` and `0..n` are not.
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                i += 1;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
            tokens.push(token(TokenKind::Number, src, start, i, line));
            continue;
        }
        // One punctuation scalar (multi-byte characters kept whole).
        let len = utf8_len(b);
        tokens.push(token(TokenKind::Punct, src, i, i + len, line));
        i += len;
    }
    tokens
}

fn token(kind: TokenKind, src: &str, start: usize, end: usize, line: usize) -> Token {
    Token {
        kind,
        text: src[start..end].to_string(),
        start,
        end,
        line,
    }
}

fn prev_byte(bytes: &[u8], i: usize) -> u8 {
    if i == 0 {
        b' '
    } else {
        bytes[i - 1]
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Lexes a literal starting with an `r`/`b` prefix at `i`, or returns
/// `None` when the prefix turns out to start a plain identifier. Returns
/// the token and the line number after it.
fn lex_prefixed_literal(src: &str, i: usize, line: usize) -> Option<(Token, usize)> {
    let bytes = src.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => {
            if raw {
                // Raw string: ends at `"` followed by `hashes` hashes.
                let mut closer = String::from('"');
                closer.push_str(&"#".repeat(hashes));
                let body_start = j + 1;
                let rel = src[body_start..].find(&closer)?;
                let end = body_start + rel + closer.len();
                let new_line = line + src[i..end].matches('\n').count();
                Some((token(TokenKind::Str, src, i, end, line), new_line))
            } else {
                // `b"..."` — plain string rules from the quote.
                let (tok, new_line) = lex_string(src, j, line);
                Some((token(TokenKind::Str, src, i, tok.end, line), new_line))
            }
        }
        Some(&b'\'') if !raw && j == i + 1 => {
            // `b'x'` byte literal.
            let tok = lex_char_or_lifetime(src, j, line);
            Some((token(TokenKind::Char, src, i, tok.end, line), line))
        }
        _ => None,
    }
}

/// Lexes a plain `"..."` string (escapes honored, newlines allowed)
/// starting at the opening quote. Returns the token and the line after it.
fn lex_string(src: &str, i: usize, line: usize) -> (Token, usize) {
    let bytes = src.as_bytes();
    let mut j = i + 1;
    let mut lines = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            // An escaped newline (string continuation) still ends a line.
            b'\\' => {
                if bytes.get(j + 1) == Some(&b'\n') {
                    lines += 1;
                }
                j += 2;
            }
            b'"' => {
                j += 1;
                break;
            }
            b'\n' => {
                lines += 1;
                j += 1;
            }
            b => j += utf8_len(b),
        }
    }
    let j = j.min(bytes.len());
    (token(TokenKind::Str, src, i, j, line), line + lines)
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal) at a `'`.
fn lex_char_or_lifetime(src: &str, i: usize, line: usize) -> Token {
    let bytes = src.as_bytes();
    let next = bytes.get(i + 1).copied().unwrap_or(b' ');
    let after = bytes.get(i + 2).copied().unwrap_or(b' ');
    if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
        // Lifetime: `'` + identifier.
        let mut j = i + 1;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        return token(TokenKind::Lifetime, src, i, j, line);
    }
    // Char literal: `'`, optional escape, one scalar, closing `'`.
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
        // `\u{...}` escapes run to the closing brace.
        if bytes.get(j - 1) == Some(&b'{') || bytes.get(j) == Some(&b'{') {
            while j < bytes.len() && bytes[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
    } else if j < bytes.len() {
        j += utf8_len(bytes[j]);
    }
    if bytes.get(j) == Some(&b'\'') {
        j += 1;
    }
    token(TokenKind::Char, src, i, j.min(bytes.len()), line)
}

// ----------------------------------------------------------------------
// Structural pass
// ----------------------------------------------------------------------

/// One struct declaration: field names with the identifier set of their
/// declared type (`conn: Option<Client>` records `["Option", "Client"]`).
#[derive(Debug)]
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<(String, Vec<String>)>,
}

/// One enum declaration: tuple variants with a *single* payload field,
/// recorded as the identifier set of the payload type. Multi-field and
/// struct variants are recorded with an empty set (never resolved).
#[derive(Debug)]
pub struct EnumDecl {
    pub name: String,
    pub variants: Vec<(String, Vec<String>)>,
}

/// One `fn` item: name, enclosing impl type (if any), typed parameters,
/// and the token range of the body (exclusive of the braces).
#[derive(Debug)]
pub struct FnDecl {
    pub name: String,
    pub self_ty: Option<String>,
    pub line: usize,
    /// `(pattern name, type identifier set)`; `self` appears as a
    /// parameter named `self` with the impl type.
    pub params: Vec<(String, Vec<String>)>,
    pub body: Range<usize>,
}

/// The structural index of one file's token stream.
#[derive(Debug, Default)]
pub struct FileIndex {
    pub tokens: Vec<Token>,
    pub structs: Vec<StructDecl>,
    pub enums: Vec<EnumDecl>,
    /// `static NAME: Type = ...` items: name + type identifier set + line.
    pub statics: Vec<(String, Vec<String>, usize)>,
    pub functions: Vec<FnDecl>,
    /// First line of `#[cfg(test)]` (the workspace keeps test modules at
    /// end of file, matching the P1 exemption), or `usize::MAX`.
    pub test_tail: usize,
}

impl FileIndex {
    /// Tokenizes `src` and collects the structural index. Items at or
    /// after the first `#[cfg(test)]` line are not collected.
    pub fn build(src: &str) -> FileIndex {
        let tokens = tokenize(src);
        let mut index = FileIndex {
            test_tail: usize::MAX,
            ..FileIndex::default()
        };
        // The impl stack: (self type, end token index of the impl body).
        let mut impls: Vec<(String, usize)> = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            if is_cfg_test(&tokens, i) {
                index.test_tail = tokens[i].line;
                break;
            }
            let tok = &tokens[i];
            if tok.is("struct") {
                i = collect_struct(&tokens, i, &mut index.structs);
                continue;
            }
            if tok.is("enum") {
                i = collect_enum(&tokens, i, &mut index.enums);
                continue;
            }
            if tok.is("static") {
                i = collect_static(&tokens, i, &mut index.statics);
                continue;
            }
            if tok.is("impl") {
                if let Some((ty, body_end)) = impl_header(&tokens, i) {
                    impls.push((ty, body_end));
                }
                // Fall through: walk into the impl body token by token.
                i += 1;
                continue;
            }
            if tok.is("fn") {
                let self_ty = impls
                    .iter()
                    .rev()
                    .find(|(_, end)| i < *end)
                    .map(|(ty, _)| ty.clone());
                if let Some((decl, next)) = collect_fn(&tokens, i, self_ty) {
                    index.functions.push(decl);
                    // Continue *inside* the body so nested items (and the
                    // next sibling) are still discovered.
                    i = next;
                    continue;
                }
            }
            i += 1;
        }
        index.tokens = tokens;
        index
    }
}

/// Matches `#` `[` `cfg` `(` `test` `)` `]` starting at `i`.
fn is_cfg_test(tokens: &[Token], i: usize) -> bool {
    let words = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + words.len()
        && words
            .iter()
            .enumerate()
            .all(|(k, w)| tokens[i + k].text == *w)
}

/// Returns the token index just past the group opened at `open`
/// (`(`/`[`/`{`), i.e. one past the matching closer.
pub fn skip_group(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(o) {
            depth += 1;
        } else if tokens[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Skips a `<...>` generics group at `i` (if present), tolerating nested
/// angle brackets. Only called in type/declaration positions, where `<`
/// cannot be a comparison.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    if i >= tokens.len() || !tokens[i].is_punct('<') {
        return i;
    }
    let mut depth = 0isize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct('<') {
            depth += 1;
        } else if tokens[j].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// All identifier texts in `tokens[range]` — the "type identifier set" of
/// a type expression.
fn idents_in(tokens: &[Token], range: Range<usize>) -> Vec<String> {
    tokens[range]
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "dyn" | "impl")
        })
        .map(|t| t.text.clone())
        .collect()
}

/// Parses `struct Name { fields }` at `i` (`tokens[i]` is `struct`);
/// returns the index to resume from. Tuple and unit structs record no
/// fields.
fn collect_struct(tokens: &[Token], i: usize, out: &mut Vec<StructDecl>) -> usize {
    let Some(name_tok) = tokens.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokenKind::Ident {
        return i + 1;
    }
    let name = name_tok.text.clone();
    let mut j = skip_generics(tokens, i + 2);
    // Skip a `where` clause up to the body / terminator.
    while j < tokens.len()
        && !tokens[j].is_punct('{')
        && !tokens[j].is_punct(';')
        && !tokens[j].is_punct('(')
    {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct('{') {
        out.push(StructDecl {
            name,
            fields: Vec::new(),
        });
        return if j < tokens.len() && tokens[j].is_punct('(') {
            skip_group(tokens, j)
        } else {
            j + 1
        };
    }
    let end = skip_group(tokens, j) - 1; // index of the closing `}`
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < end {
        // Skip attributes and visibility.
        if tokens[k].is_punct('#') {
            k += 1;
            if k < end && tokens[k].is_punct('[') {
                k = skip_group(tokens, k);
            }
            continue;
        }
        if tokens[k].is("pub") {
            k += 1;
            if k < end && tokens[k].is_punct('(') {
                k = skip_group(tokens, k);
            }
            continue;
        }
        // `name : Type ,`
        if tokens[k].kind == TokenKind::Ident && k + 1 < end && tokens[k + 1].is_punct(':') {
            let field = tokens[k].text.clone();
            let ty_start = k + 2;
            let mut t = ty_start;
            let mut depth = 0isize;
            while t < end {
                match tokens[t].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                t += 1;
            }
            fields.push((field, idents_in(tokens, ty_start..t)));
            k = t + 1;
            continue;
        }
        k += 1;
    }
    out.push(StructDecl { name, fields });
    end + 1
}

/// Parses `enum Name { variants }` at `i`; returns the resume index.
fn collect_enum(tokens: &[Token], i: usize, out: &mut Vec<EnumDecl>) -> usize {
    let Some(name_tok) = tokens.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokenKind::Ident {
        return i + 1;
    }
    let name = name_tok.text.clone();
    let mut j = skip_generics(tokens, i + 2);
    while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct('{') {
        return j + 1;
    }
    let end = skip_group(tokens, j) - 1;
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < end {
        if tokens[k].is_punct('#') {
            k += 1;
            if k < end && tokens[k].is_punct('[') {
                k = skip_group(tokens, k);
            }
            continue;
        }
        if tokens[k].kind == TokenKind::Ident {
            let variant = tokens[k].text.clone();
            let mut payload = Vec::new();
            let mut next = k + 1;
            if next < end && tokens[next].is_punct('(') {
                let close = skip_group(tokens, next) - 1;
                // Single-payload tuple variant only: a depth-1 comma means
                // multiple fields, which the pattern heuristic never types.
                let mut depth = 0isize;
                let mut multi = false;
                for tok in &tokens[next + 1..close] {
                    match tok.text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        "," if depth <= 0 => multi = true,
                        _ => {}
                    }
                }
                if !multi {
                    payload = idents_in(tokens, next + 1..close);
                }
                next = close + 1;
            } else if next < end && tokens[next].is_punct('{') {
                next = skip_group(tokens, next);
            }
            variants.push((variant, payload));
            // Skip discriminant / to the comma.
            while next < end && !tokens[next].is_punct(',') {
                next += 1;
            }
            k = next + 1;
            continue;
        }
        k += 1;
    }
    out.push(EnumDecl { name, variants });
    end + 1
}

/// Parses `static NAME: Type = ...;` at `i`; returns the resume index.
fn collect_static(
    tokens: &[Token],
    i: usize,
    out: &mut Vec<(String, Vec<String>, usize)>,
) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is("mut") {
        j += 1;
    }
    let Some(name_tok) = tokens.get(j) else {
        return i + 1;
    };
    if name_tok.kind != TokenKind::Ident || tokens.get(j + 1).is_none_or(|t| !t.is_punct(':')) {
        return i + 1;
    }
    let ty_start = j + 2;
    let mut t = ty_start;
    while t < tokens.len() && !tokens[t].is_punct('=') && !tokens[t].is_punct(';') {
        t += 1;
    }
    out.push((
        name_tok.text.clone(),
        idents_in(tokens, ty_start..t),
        name_tok.line,
    ));
    t
}

/// Parses an `impl` header at `i` (`tokens[i]` is `impl`): returns the
/// self-type name and the token index just past the impl body.
fn impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = skip_generics(tokens, i + 1);
    // The header runs to the body brace; `for` splits trait from type.
    let mut path_start = j;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        if tokens[j].is("for") {
            path_start = j + 1;
        } else if tokens[j].is("where") {
            break;
        }
        j += 1;
    }
    while j < tokens.len() && !tokens[j].is_punct('{') {
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // Self-type name: the ident right before the first `<` in the path
    // region, else the last ident of the path.
    let mut name = None;
    for tok in &tokens[path_start..j] {
        if tok.is_punct('<') {
            break;
        }
        if tok.kind == TokenKind::Ident && !tok.is("where") {
            name = Some(tok.text.clone());
        }
    }
    Some((name?, skip_group(tokens, j)))
}

/// Parses a `fn` item at `i` (`tokens[i]` is `fn`): the declaration and
/// the token index to resume scanning from (just inside the body, so
/// nested items are still found). Returns `None` for bodyless
/// declarations (trait methods, extern).
fn collect_fn(tokens: &[Token], i: usize, self_ty: Option<String>) -> Option<(FnDecl, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let j = skip_generics(tokens, i + 2);
    if j >= tokens.len() || !tokens[j].is_punct('(') {
        return None;
    }
    let params_end = skip_group(tokens, j) - 1; // index of `)`
    let params = collect_params(tokens, j + 1, params_end, self_ty.as_deref());
    // Return type / where clause up to the body `{` (or `;`: no body).
    let mut k = params_end + 1;
    let mut depth = 0isize;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => break,
            ";" if depth <= 0 => return None,
            _ => {}
        }
        k += 1;
    }
    if k >= tokens.len() {
        return None;
    }
    let body_end = skip_group(tokens, k) - 1;
    Some((
        FnDecl {
            name,
            self_ty,
            line,
            params,
            body: k + 1..body_end,
        },
        k + 1,
    ))
}

/// Splits a parameter list (`tokens[start..end]`, the region between the
/// parens) at depth-1 commas and extracts `(name, type idents)` pairs.
fn collect_params(
    tokens: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
) -> Vec<(String, Vec<String>)> {
    let mut params = Vec::new();
    let mut piece_start = start;
    let mut depth = 0isize;
    let mut k = start;
    while k <= end {
        let at_end = k == end;
        if !at_end {
            match tokens[k].text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        if at_end || (depth <= 0 && tokens[k].is_punct(',')) {
            if piece_start < k {
                param_of(tokens, piece_start, k, self_ty, &mut params);
            }
            piece_start = k + 1;
        }
        k += 1;
    }
    params
}

/// Extracts one parameter from `tokens[start..end]`.
fn param_of(
    tokens: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    out: &mut Vec<(String, Vec<String>)>,
) {
    // `self` / `&self` / `&mut self` — typed as the impl type.
    if tokens[start..end].iter().any(|t| t.is("self")) {
        if let Some(ty) = self_ty {
            out.push(("self".to_string(), vec![ty.to_string()]));
        }
        return;
    }
    // `name : Type` — name is the last ident before the first depth-0 `:`
    // (skipping `mut`); destructuring patterns fall out naturally.
    let mut colon = None;
    let mut depth = 0isize;
    for t in start..end {
        match tokens[t].text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            ":" if depth <= 0 => {
                // Not a `::` path separator.
                if tokens.get(t + 1).is_some_and(|n| n.is_punct(':')) {
                    continue;
                }
                colon = Some(t);
                break;
            }
            _ => {}
        }
    }
    let Some(colon) = colon else { return };
    let name = tokens[start..colon]
        .iter()
        .rfind(|t| t.kind == TokenKind::Ident && !t.is("mut"));
    if let Some(name) = name {
        out.push((name.text.clone(), idents_in(tokens, colon + 1..end)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn tokens_roundtrip_offsets_and_lines() {
        let src = "fn f(x: &str) -> u32 {\n    // comment with 'quotes' and \"strings\"\n    let s = \"a\\\"b\"; let c = 'x'; s.len() as u32\n}\n";
        for tok in tokenize(src) {
            assert_eq!(&src[tok.start..tok.end], tok.text, "offset mismatch");
            assert_eq!(
                src[..tok.start].matches('\n').count() + 1,
                tok.line,
                "line mismatch for {:?}",
                tok.text
            );
        }
    }

    #[test]
    fn comments_and_strings_are_handled() {
        assert_eq!(texts("a /* b /* c */ d */ e"), ["a", "e"]);
        assert_eq!(texts("x // rest\ny"), ["x", "y"]);
        let toks = tokenize("let s = \"// not a comment\";");
        assert_eq!(toks[3].kind, TokenKind::Str);
        assert_eq!(toks[3].text, "\"// not a comment\"");
    }

    #[test]
    fn raw_strings_and_byte_literals() {
        let toks = tokenize(r##"let s = r#"quote " inside"#; let b = b"x"; let c = b'y';"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::Char))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r##"r#"quote " inside"#"##, "b\"x\"", "b'y'"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'a'");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5f64"), ["1.5f64"]);
        assert_eq!(texts("1.to_string()"), ["1", ".", "to_string", "(", ")"]);
    }

    #[test]
    fn struct_fields_and_lock_types_are_collected() {
        let index = FileIndex::build(
            "pub struct S { pub core: Mutex<Core>, conn: Option<Client>, n: usize }\n\
             struct Unit;\nstruct Tup(u32);\n",
        );
        assert_eq!(index.structs.len(), 3);
        let s = &index.structs[0];
        assert_eq!(s.name, "S");
        assert_eq!(s.fields[0].0, "core");
        assert_eq!(s.fields[0].1, ["Mutex", "Core"]);
        assert_eq!(s.fields[1].1, ["Option", "Client"]);
    }

    #[test]
    fn enum_single_payload_variants_are_collected() {
        let index = FileIndex::build(
            "enum Slot { Local(Shard), Remote(Box<RemoteShard>), Pair(u32, u32), Unit }\n",
        );
        let e = &index.enums[0];
        assert_eq!(e.name, "Slot");
        assert_eq!(
            e.variants[0],
            ("Local".to_string(), vec!["Shard".to_string()])
        );
        assert_eq!(
            e.variants[1].1,
            vec!["Box".to_string(), "RemoteShard".to_string()]
        );
        assert!(
            e.variants[2].1.is_empty(),
            "multi-field payload must not type"
        );
        assert!(e.variants[3].1.is_empty());
    }

    #[test]
    fn functions_record_impl_type_params_and_bodies() {
        let src = "impl Client {\n  fn request(&mut self, line: &str) -> Result<(), Error> { self.flush() }\n}\n\
                   fn free(conn: &mut Client, n: usize) { conn.request(\"x\") }\n\
                   impl Display for Shard { fn fmt(&self, f: &mut Formatter) -> fmt::Result { Ok(()) } }\n";
        let index = FileIndex::build(src);
        assert_eq!(index.functions.len(), 3);
        let req = &index.functions[0];
        assert_eq!(req.name, "request");
        assert_eq!(req.self_ty.as_deref(), Some("Client"));
        assert_eq!(
            req.params[0],
            ("self".to_string(), vec!["Client".to_string()])
        );
        assert_eq!(req.params[1].0, "line");
        let free = &index.functions[1];
        assert_eq!(free.name, "free");
        assert_eq!(free.self_ty, None);
        assert_eq!(free.params[0].1, ["Client"]);
        assert_eq!(index.functions[2].self_ty.as_deref(), Some("Shard"));
        // Body ranges hold the body tokens, braces excluded.
        let body: Vec<_> = index.tokens[req.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["self", ".", "flush", "(", ")"]);
    }

    #[test]
    fn test_tail_stops_collection() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn hidden() {} }\n";
        let index = FileIndex::build(src);
        assert_eq!(index.functions.len(), 1);
        assert_eq!(index.test_tail, 2);
    }

    #[test]
    fn statics_are_collected() {
        let index =
            FileIndex::build("static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n");
        assert_eq!(index.statics[0].0, "REGISTRY");
        assert!(index.statics[0].1.contains(&"Mutex".to_string()));
    }
}
