//! Numerical validation of oracle contracts.
//!
//! The approximation guarantees of every optimizer in this crate assume the
//! objective is normalized, monotone and submodular, and that its
//! incremental state is order-independent. These checkers probe those
//! properties on random subsets of the ground set; the HASTE test suites run
//! them against the real scheduling objective (Lemma 4.2 of the paper,
//! checked by machine).
//!
//! Note that the properties are required on the *full* ground set — sets may
//! contain several elements of the same partition; the matroid constraint is
//! the optimizer's business, not the function's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::PartitionedObjective;

/// An element of the ground set: `(partition, choice)`.
pub type Element = (usize, usize);

/// Evaluates `f` on an arbitrary set of elements by replaying commits.
pub fn value_of_set<O: PartitionedObjective>(obj: &O, set: &[Element]) -> f64 {
    let mut state = obj.new_state();
    for &(p, x) in set {
        obj.commit(&mut state, p, x);
    }
    obj.value(&state)
}

/// All elements of the ground set.
fn all_elements<O: PartitionedObjective>(obj: &O) -> Vec<Element> {
    (0..obj.num_partitions())
        .flat_map(|p| (0..obj.num_choices(p)).map(move |x| (p, x)))
        .collect()
}

fn random_subset(rng: &mut StdRng, universe: &[Element], keep_prob: f64) -> Vec<Element> {
    universe
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(keep_prob))
        .collect()
}

/// Checks `f(∅) = 0`.
pub fn check_normalized<O: PartitionedObjective>(obj: &O, tol: f64) -> Result<(), String> {
    let v = obj.value(&obj.new_state());
    if v.abs() > tol {
        return Err(format!("f(∅) = {v}, expected 0"));
    }
    Ok(())
}

/// Checks monotonicity: marginal gains are never negative, on `trials`
/// random (set, element) pairs.
pub fn check_monotone<O: PartitionedObjective>(
    obj: &O,
    trials: usize,
    seed: u64,
    tol: f64,
) -> Result<(), String> {
    let universe = all_elements(obj);
    if universe.is_empty() {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..trials {
        let set = random_subset(&mut rng, &universe, 0.4);
        let e = universe[rng.gen_range(0..universe.len())];
        let mut state = obj.new_state();
        for &(p, x) in &set {
            obj.commit(&mut state, p, x);
        }
        let gain = obj.marginal(&state, e.0, e.1);
        if gain < -tol {
            return Err(format!(
                "trial {t}: negative marginal {gain} for element {e:?} on set of {} elements",
                set.len()
            ));
        }
    }
    Ok(())
}

/// Checks submodularity (diminishing returns): for random `A ⊆ B` and
/// `e ∉ B`, `f(A∪e) − f(A) ≥ f(B∪e) − f(B)`.
pub fn check_submodular<O: PartitionedObjective>(
    obj: &O,
    trials: usize,
    seed: u64,
    tol: f64,
) -> Result<(), String> {
    let universe = all_elements(obj);
    if universe.is_empty() {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..trials {
        // Draw B, thin it to A, pick e outside B.
        let b = random_subset(&mut rng, &universe, 0.5);
        let a: Vec<Element> = b.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        let outside: Vec<Element> = universe
            .iter()
            .copied()
            .filter(|e| !b.contains(e))
            .collect();
        if outside.is_empty() {
            continue;
        }
        let e = outside[rng.gen_range(0..outside.len())];

        let mut state_a = obj.new_state();
        for &(p, x) in &a {
            obj.commit(&mut state_a, p, x);
        }
        let gain_a = obj.marginal(&state_a, e.0, e.1);

        let mut state_b = obj.new_state();
        for &(p, x) in &b {
            obj.commit(&mut state_b, p, x);
        }
        let gain_b = obj.marginal(&state_b, e.0, e.1);

        if gain_a < gain_b - tol {
            return Err(format!(
                "trial {t}: diminishing returns violated for {e:?}: \
                 gain on |A|={} is {gain_a}, gain on |B|={} is {gain_b}",
                a.len(),
                b.len()
            ));
        }
    }
    Ok(())
}

/// Checks order independence: committing a random set in two different
/// orders yields the same value.
pub fn check_order_independence<O: PartitionedObjective>(
    obj: &O,
    trials: usize,
    seed: u64,
    tol: f64,
) -> Result<(), String> {
    let universe = all_elements(obj);
    if universe.is_empty() {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..trials {
        let mut set = random_subset(&mut rng, &universe, 0.5);
        let v1 = value_of_set(obj, &set);
        // Fisher–Yates shuffle.
        for i in (1..set.len()).rev() {
            let j = rng.gen_range(0..=i);
            set.swap(i, j);
        }
        let v2 = value_of_set(obj, &set);
        if (v1 - v2).abs() > tol {
            return Err(format!(
                "trial {t}: order dependence: {v1} vs {v2} on a set of {} elements",
                set.len()
            ));
        }
    }
    Ok(())
}

/// Runs every checker; convenience for test suites.
pub fn check_all<O: PartitionedObjective>(
    obj: &O,
    trials: usize,
    seed: u64,
    tol: f64,
) -> Result<(), String> {
    check_normalized(obj, tol)?;
    check_monotone(obj, trials, seed, tol)?;
    check_submodular(obj, trials, seed.wrapping_add(1), tol)?;
    check_order_independence(obj, trials, seed.wrapping_add(2), tol)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyCoverage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn toy_coverage_passes_all_checks() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let toy = ToyCoverage::random(&mut rng, 5, 3, 7, 2);
            check_all(&toy, 50, 99, 1e-9).unwrap();
        }
    }

    /// A deliberately supermodular ("synergy") function must be caught.
    struct Supermodular;
    impl PartitionedObjective for Supermodular {
        type State = u32;
        fn new_state(&self) -> u32 {
            0
        }
        fn num_partitions(&self) -> usize {
            3
        }
        fn num_choices(&self, _p: usize) -> usize {
            1
        }
        fn value(&self, state: &u32) -> f64 {
            let n = *state as f64;
            n * n // convex in |X| → supermodular
        }
        fn marginal(&self, state: &u32, _p: usize, _x: usize) -> f64 {
            self.value(&(state + 1)) - self.value(state)
        }
        fn commit(&self, state: &mut u32, _p: usize, _x: usize) {
            *state += 1;
        }
    }

    #[test]
    fn supermodular_is_rejected() {
        let err = check_submodular(&Supermodular, 200, 1, 1e-9);
        assert!(err.is_err());
        // But it is monotone and normalized.
        check_normalized(&Supermodular, 1e-12).unwrap();
        check_monotone(&Supermodular, 100, 1, 1e-9).unwrap();
    }

    /// A decreasing function must be caught by the monotonicity check.
    struct Decreasing;
    impl PartitionedObjective for Decreasing {
        type State = u32;
        fn new_state(&self) -> u32 {
            0
        }
        fn num_partitions(&self) -> usize {
            2
        }
        fn num_choices(&self, _p: usize) -> usize {
            1
        }
        fn value(&self, state: &u32) -> f64 {
            -(*state as f64)
        }
        fn marginal(&self, state: &u32, _p: usize, _x: usize) -> f64 {
            self.value(&(state + 1)) - self.value(state)
        }
        fn commit(&self, state: &mut u32, _p: usize, _x: usize) {
            *state += 1;
        }
    }

    #[test]
    fn decreasing_is_rejected() {
        assert!(check_monotone(&Decreasing, 50, 1, 1e-9).is_err());
    }

    #[test]
    fn empty_universe_passes_vacuously() {
        let toy = ToyCoverage {
            choices: vec![],
            weights: vec![],
            cap: 1,
        };
        check_all(&toy, 10, 0, 1e-9).unwrap();
    }
}
