//! Exact optimum by exhaustive enumeration.

use crate::{PartitionedObjective, Selection};

/// Why brute force refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BruteForceError {
    /// The search space exceeds the caller-provided budget.
    TooLarge {
        /// Product of per-partition option counts (saturating).
        combinations: u128,
        /// The budget that was exceeded.
        budget: u128,
    },
}

impl std::fmt::Display for BruteForceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BruteForceError::TooLarge {
                combinations,
                budget,
            } => write!(
                f,
                "brute force refused: {combinations} combinations exceed budget {budget}"
            ),
        }
    }
}

impl std::error::Error for BruteForceError {}

/// Finds the exact maximum of a monotone objective over the partition
/// matroid by enumerating one choice per non-empty partition.
///
/// Monotonicity means leaving a non-empty partition unfilled is never
/// strictly better, so enumerating exactly-one-per-partition suffices for
/// the optimum value. Refuses to run if the number of combinations exceeds
/// `budget` (the paper uses this only on 5-charger/10-task instances,
/// Figs. 8–9).
pub fn brute_force<O: PartitionedObjective>(
    obj: &O,
    budget: u128,
) -> Result<Selection, BruteForceError> {
    let p_total = obj.num_partitions();
    let sizes: Vec<usize> = (0..p_total).map(|p| obj.num_choices(p)).collect();
    let mut combinations: u128 = 1;
    for &s in &sizes {
        if s > 0 {
            combinations = combinations.saturating_mul(s as u128);
        }
    }
    if combinations > budget {
        return Err(BruteForceError::TooLarge {
            combinations,
            budget,
        });
    }

    let mut best = Selection::empty(p_total);
    let mut current: Vec<Option<usize>> = vec![None; p_total];
    // Depth-first product enumeration carrying the oracle state down the
    // tree so each node costs one commit instead of a full replay.
    fn recurse<O: PartitionedObjective>(
        obj: &O,
        sizes: &[usize],
        p: usize,
        state: &O::State,
        current: &mut Vec<Option<usize>>,
        best: &mut Selection,
    ) {
        if p == sizes.len() {
            let value = obj.value(state);
            if value > best.value {
                best.value = value;
                best.choices.clone_from(current);
            }
            return;
        }
        if sizes[p] == 0 {
            current[p] = None;
            recurse(obj, sizes, p + 1, state, current, best);
            return;
        }
        for x in 0..sizes[p] {
            let mut next = state.clone();
            obj.commit(&mut next, p, x);
            current[p] = Some(x);
            recurse(obj, sizes, p + 1, &next, current, best);
        }
        current[p] = None;
    }

    let state = obj.new_state();
    // Seed `best` with the empty solution value (0 for normalized f).
    best.value = obj.value(&state);
    recurse(obj, &sizes, 0, &state, &mut current, &mut best);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyCoverage;
    use crate::{evaluate_selection, locally_greedy, GreedyOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_known_optimum() {
        let toy = ToyCoverage::example();
        let opt = brute_force(&toy, 1000).unwrap();
        assert!((opt.value - 7.0).abs() < 1e-12);
        assert_eq!(opt.choices, vec![Some(0), Some(1)]);
    }

    #[test]
    fn refuses_oversized_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let toy = ToyCoverage::random(&mut rng, 10, 10, 5, 1);
        let err = brute_force(&toy, 10).unwrap_err();
        assert!(matches!(err, BruteForceError::TooLarge { .. }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn optimum_dominates_greedy() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let toy = ToyCoverage::random(&mut rng, 5, 3, 6, 2);
            let opt = brute_force(&toy, 1 << 20).unwrap();
            let greedy = locally_greedy(&toy, &GreedyOptions::default());
            assert!(opt.value >= greedy.value - 1e-9);
            // Reported value must equal a replay of the chosen set.
            assert!((opt.value - evaluate_selection(&toy, &opt.choices)).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_empty_partitions() {
        let toy = ToyCoverage {
            choices: vec![vec![], vec![vec![0]], vec![]],
            weights: vec![3.0],
            cap: 1,
        };
        let opt = brute_force(&toy, 1000).unwrap();
        assert_eq!(opt.choices, vec![None, Some(0), None]);
        assert!((opt.value - 3.0).abs() < 1e-12);
    }
}
