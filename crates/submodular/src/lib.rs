//! Monotone submodular maximization under a partition matroid.
//!
//! HASTE-R (the relaxed scheduling problem of the paper, Section 4) is the
//! maximization of a normalized monotone submodular function `f` over a
//! ground set partitioned into blocks `Θ_{i,k}` (one block per charger per
//! slot), picking at most one element per block. This crate implements that
//! machinery generically, decoupled from charging:
//!
//! * [`PartitionedObjective`] — the incremental oracle an objective must
//!   implement (marginal gains + commits against a cloneable state),
//! * [`locally_greedy`] — the classic 1/2-approximation that fills blocks in
//!   a fixed order (Nemhauser–Wolsey–Fisher),
//! * [`lazy_greedy`] — globally greedy with lazy marginal re-evaluation
//!   (Minoux), same guarantee, often far fewer oracle calls,
//! * [`tabular_greedy`] — the TabularGreedy algorithm of Streeter–Golovin
//!   with `C` colors, approaching `1 − 1/e` as `C → ∞`; expectation over
//!   color vectors is estimated by seeded Monte-Carlo sampling,
//! * [`brute_force`] — exact optimum by exhaustive enumeration (small
//!   instances; used for the paper's Figs. 8–9 and for tests),
//! * [`validate`] — numerical monotonicity / submodularity /
//!   order-independence checkers used by the test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod greedy;
mod tabular;
pub mod validate;

#[cfg(test)]
pub(crate) mod toy;

pub use exact::{brute_force, BruteForceError};
pub use greedy::{
    lazy_greedy, lazy_greedy_with_stats, locally_greedy, locally_greedy_with_stats, GreedyOptions,
};
pub use tabular::{tabular_greedy, tabular_greedy_with_stats, TabularOptions};

/// Oracle-call accounting reported by the `*_with_stats` optimizers.
///
/// Counts are computed arithmetically from loop bounds rather than through
/// shared atomics, so they are exact and identical for every thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Number of `marginal` oracle evaluations performed.
    pub marginal_calls: u64,
    /// Number of `commit` operations applied to optimizer states.
    pub commit_calls: u64,
}

impl OptimizerStats {
    /// Accumulates another optimizer run's counters into `self`.
    pub fn merge(&mut self, other: &OptimizerStats) {
        self.marginal_calls += other.marginal_calls;
        self.commit_calls += other.commit_calls;
    }
}

/// Minimum argmax scan size (candidates × states touched per candidate)
/// before the optimizers fan the scan out across threads: below this the
/// scoped-thread setup costs more than the oracle calls it parallelizes.
/// Both paths compute bit-identical results, so the gate is a pure
/// performance knob.
pub(crate) const PAR_ARGMAX_MIN_WORK: usize = 1024;

/// The outcome of an optimizer: one chosen element per partition (or `None`
/// for empty partitions / zero-gain blocks) and the achieved objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// `choices[p]` is the element index selected in partition `p`.
    pub choices: Vec<Option<usize>>,
    /// Objective value `f(selection)` as reported by the oracle.
    pub value: f64,
}

impl Selection {
    /// A selection with nothing chosen.
    pub fn empty(num_partitions: usize) -> Self {
        Selection {
            choices: vec![None; num_partitions],
            value: 0.0,
        }
    }

    /// Number of partitions with a chosen element.
    pub fn num_chosen(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }
}

/// Incremental oracle for a normalized monotone submodular set function over
/// a partitioned ground set.
///
/// An element of the ground set is addressed as `(partition, choice)` with
/// `partition < num_partitions()` and `choice < num_choices(partition)`.
/// The oracle owns a `State` carrying whatever it needs to answer marginal
/// queries in `O(small)`; optimizers clone states to explore alternatives.
///
/// # Contract
///
/// For the algorithms' guarantees to be meaningful the induced set function
/// must be normalized (`f(∅) = 0` for a fresh state), monotone and
/// submodular, and **order-independent**: committing the same set of
/// elements in any order must yield the same state value. The
/// [`validate`] module can check all three numerically.
pub trait PartitionedObjective: Sync {
    /// Evaluation state. `f(X)` for a set `X` is obtained by committing the
    /// elements of `X` (in any order) onto a fresh state. `Sync` because the
    /// parallel argmax scans read a shared state from several threads.
    type State: Clone + Send + Sync;

    /// A fresh state representing the empty set.
    fn new_state(&self) -> Self::State;

    /// Number of partitions (blocks) of the ground set.
    fn num_partitions(&self) -> usize;

    /// Number of selectable elements in `partition`.
    fn num_choices(&self, partition: usize) -> usize;

    /// Current objective value `f` of the set represented by `state`.
    fn value(&self, state: &Self::State) -> f64;

    /// `f(X ∪ {e}) − f(X)` for `e = (partition, choice)` without modifying
    /// the state.
    fn marginal(&self, state: &Self::State, partition: usize, choice: usize) -> f64;

    /// Adds `(partition, choice)` to the set represented by `state`.
    fn commit(&self, state: &mut Self::State, partition: usize, choice: usize);
}

/// Evaluates `f` on an explicit selection by replaying it onto a fresh
/// state. Handy for optimizers and tests.
pub fn evaluate_selection<O: PartitionedObjective>(obj: &O, choices: &[Option<usize>]) -> f64 {
    let mut state = obj.new_state();
    for (p, choice) in choices.iter().enumerate() {
        if let Some(x) = choice {
            obj.commit(&mut state, p, *x);
        }
    }
    obj.value(&state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyCoverage;

    #[test]
    fn selection_empty() {
        let s = Selection::empty(3);
        assert_eq!(s.choices, vec![None, None, None]);
        assert_eq!(s.num_chosen(), 0);
        assert_eq!(s.value, 0.0);
    }

    #[test]
    fn oracle_contract_on_toy() {
        let toy = ToyCoverage::example();
        let mut state = toy.new_state();
        assert_eq!(toy.value(&state), 0.0);
        let gain = toy.marginal(&state, 0, 0);
        toy.commit(&mut state, 0, 0);
        assert!((toy.value(&state) - gain).abs() < 1e-12);
    }

    #[test]
    fn evaluate_selection_replays() {
        let toy = ToyCoverage::example();
        let v = evaluate_selection(&toy, &[Some(0), None]);
        let mut state = toy.new_state();
        toy.commit(&mut state, 0, 0);
        assert!((v - toy.value(&state)).abs() < 1e-12);
    }
}
