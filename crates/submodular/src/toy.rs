//! A small weighted-coverage objective used by this crate's unit tests.
//!
//! Ground set: each partition offers a few "candidate sets" of items; the
//! objective is the total weight of *distinct* items covered, with an
//! optional per-item saturating cap (`min(count, cap) / cap` scaling) to
//! exercise concave, non-modular behaviour. Weighted coverage is the
//! canonical monotone submodular function, so every optimizer can be checked
//! against it with known answers.

use crate::PartitionedObjective;

/// Weighted (capped) coverage over a finite universe of items.
#[derive(Debug, Clone)]
pub(crate) struct ToyCoverage {
    /// `choices[p][x]` is the set of item indices element `(p, x)` covers.
    pub choices: Vec<Vec<Vec<usize>>>,
    /// Weight of each universe item.
    pub weights: Vec<f64>,
    /// An item's contribution is `weights[it] * min(count, cap) / cap`.
    pub cap: u32,
}

impl ToyCoverage {
    /// Two partitions / three items example with a known optimum:
    /// partition 0 offers {0,1} or {2}; partition 1 offers {1} or {2}.
    /// Best (cap = 1): {0,1} + {2} = 1.0 + 2.0 + 4.0 = 7.0.
    pub fn example() -> Self {
        ToyCoverage {
            choices: vec![vec![vec![0, 1], vec![2]], vec![vec![1], vec![2]]],
            weights: vec![1.0, 2.0, 4.0],
            cap: 1,
        }
    }

    /// Random instance for property tests.
    pub fn random(
        rng: &mut impl rand::Rng,
        partitions: usize,
        max_choices: usize,
        items: usize,
        cap: u32,
    ) -> Self {
        let choices = (0..partitions)
            .map(|_| {
                let k = rng.gen_range(0..=max_choices);
                (0..k)
                    .map(|_| {
                        let len = rng.gen_range(0..=items.min(4));
                        (0..len).map(|_| rng.gen_range(0..items)).collect()
                    })
                    .collect()
            })
            .collect();
        let weights = (0..items).map(|_| rng.gen_range(0.1..2.0)).collect();
        ToyCoverage {
            choices,
            weights,
            cap: cap.max(1),
        }
    }
}

impl PartitionedObjective for ToyCoverage {
    type State = Vec<u32>; // cover count per item

    fn new_state(&self) -> Self::State {
        vec![0; self.weights.len()]
    }

    fn num_partitions(&self) -> usize {
        self.choices.len()
    }

    fn num_choices(&self, partition: usize) -> usize {
        self.choices[partition].len()
    }

    fn value(&self, state: &Self::State) -> f64 {
        state
            .iter()
            .zip(&self.weights)
            .map(|(&count, &w)| w * (count.min(self.cap) as f64) / self.cap as f64)
            .sum()
    }

    fn marginal(&self, state: &Self::State, partition: usize, choice: usize) -> f64 {
        let mut counts = state.clone();
        let before = self.value(state);
        for &it in &self.choices[partition][choice] {
            counts[it] += 1;
        }
        self.value(&counts) - before
    }

    fn commit(&self, state: &mut Self::State, partition: usize, choice: usize) {
        for &it in &self.choices[partition][choice] {
            state[it] += 1;
        }
    }
}
