//! Greedy maximization: locally greedy (block-by-block) and lazy greedy
//! (global, with stale-marginal re-evaluation).
//!
//! Both optimizers can fan their per-candidate marginal scans out across
//! threads (`GreedyOptions::threads`). The parallel path is bit-identical to
//! the sequential one for any thread count: candidate gains are computed
//! independently (one oracle call each, no accumulation order to vary) and
//! the winner is then picked by a sequential scan over the gains in index
//! order, so epsilon tie-breaking behaves exactly as before.

use crate::{OptimizerStats, PartitionedObjective, Selection, PAR_ARGMAX_MIN_WORK};

/// Options shared by the greedy optimizers.
pub struct GreedyOptions<'a> {
    /// Visit order of partitions for [`locally_greedy`]; `None` is natural
    /// order `0..P`. Must be a permutation of `0..P` when given.
    pub order: Option<&'a [usize]>,
    /// Tie-break hook: given the choices committed so far and the partition
    /// being filled, may return a preferred choice index that wins exact
    /// ties (used by HASTE to avoid needless orientation switches).
    #[allow(clippy::type_complexity)]
    pub tie_break: Option<&'a dyn Fn(&[Option<usize>], usize) -> Option<usize>>,
    /// Skip elements whose marginal gain is ≤ this threshold (default 0:
    /// zero-gain blocks stay unassigned so schedules stay parsimonious;
    /// the guarantee is unaffected because skipped gains are zero).
    pub min_gain: f64,
    /// Worker threads for the per-candidate marginal scans (1 = sequential,
    /// 0 = auto-detect via [`haste_parallel::default_threads`]). Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl Default for GreedyOptions<'_> {
    fn default() -> Self {
        GreedyOptions {
            order: None,
            tie_break: None,
            min_gain: 0.0,
            threads: 1,
        }
    }
}

/// Threads to actually use for a scan of `work` oracle calls: `0` first
/// resolves to the machine's parallelism, then stays sequential below
/// [`PAR_ARGMAX_MIN_WORK`] so thread setup cannot dominate tiny scans.
/// Purely a performance gate — both paths agree bitwise.
pub(crate) fn effective_threads(threads: usize, work: usize) -> usize {
    let threads = haste_parallel::resolve_threads(threads);
    if threads > 1 && work >= PAR_ARGMAX_MIN_WORK {
        threads
    } else {
        1
    }
}

/// The locally greedy algorithm: fills each partition in turn with the
/// element of maximum marginal gain given everything chosen so far.
///
/// For a normalized monotone submodular `f` under a partition matroid this
/// achieves at least `1/2` of the optimum (Nemhauser–Wolsey–Fisher, 1978) —
/// and equals TabularGreedy with `C = 1`.
///
/// Complexity: one `marginal` call per (partition, choice) pair plus one
/// `commit` per partition.
pub fn locally_greedy<O: PartitionedObjective>(obj: &O, options: &GreedyOptions) -> Selection {
    locally_greedy_with_stats(obj, options).0
}

/// [`locally_greedy`] that also reports oracle-call counts.
pub fn locally_greedy_with_stats<O: PartitionedObjective>(
    obj: &O,
    options: &GreedyOptions,
) -> (Selection, OptimizerStats) {
    let p_total = obj.num_partitions();
    if let Some(order) = options.order {
        assert_eq!(order.len(), p_total, "order must be a permutation");
    }
    let mut stats = OptimizerStats::default();
    let mut state = obj.new_state();
    let mut choices = vec![None; p_total];
    let natural: Vec<usize>;
    let order: &[usize] = match options.order {
        Some(o) => o,
        None => {
            natural = (0..p_total).collect();
            &natural
        }
    };
    for &p in order {
        let preferred = options.tie_break.and_then(|f| f(&choices, p));
        let n_choices = obj.num_choices(p);
        stats.marginal_calls += n_choices as u64;
        // Candidate gains are independent one-call evaluations, so the scan
        // parallelizes without changing a single bit; the epsilon/tie-break
        // selection below stays sequential in index order.
        let state_ref = &state;
        let gains = haste_parallel::par_map_range(
            n_choices,
            effective_threads(options.threads, n_choices),
            |x| obj.marginal(state_ref, p, x),
        );
        let mut best: Option<(usize, f64)> = None;
        for (x, &gain) in gains.iter().enumerate() {
            let better = match best {
                None => true,
                Some((bx, bg)) => {
                    gain > bg + 1e-15
                        || ((gain - bg).abs() <= 1e-15
                            && preferred == Some(x)
                            && preferred != Some(bx))
                }
            };
            if better {
                best = Some((x, gain));
            }
        }
        if let Some((x, gain)) = best {
            if gain > options.min_gain {
                obj.commit(&mut state, p, x);
                choices[p] = Some(x);
                stats.commit_calls += 1;
            }
        }
    }
    let value = obj.value(&state);
    (Selection { choices, value }, stats)
}

/// The globally greedy algorithm with lazy evaluation (Minoux's accelerated
/// greedy): repeatedly pick the element of maximum marginal gain over *all*
/// unfilled partitions, re-evaluating stale marginals only when they reach
/// the head of a max-heap. Valid because submodularity guarantees marginals
/// only shrink as the solution grows.
///
/// Same `1/2` guarantee as [`locally_greedy`] for partition matroids; usually
/// far fewer oracle calls on instances with many low-value elements.
pub fn lazy_greedy<O: PartitionedObjective>(obj: &O, min_gain: f64) -> Selection {
    lazy_greedy_with_stats(obj, min_gain, 1).0
}

/// [`lazy_greedy`] that also reports oracle-call counts and can fill the
/// initial heap in parallel over partitions (`threads`).
///
/// Only the initial marginal sweep parallelizes — the Minoux re-evaluation
/// loop is inherently sequential. Per-partition results are flattened in
/// partition order before insertion, and the heap's ordering is total
/// (gain, then ids), so the outcome is bit-identical for any thread count.
pub fn lazy_greedy_with_stats<O: PartitionedObjective>(
    obj: &O,
    min_gain: f64,
    threads: usize,
) -> (Selection, OptimizerStats) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Heap entry ordered by cached gain (max-heap), ties by ids for
    /// determinism.
    struct Entry {
        gain: f64,
        partition: usize,
        choice: usize,
        /// Solution size when `gain` was computed.
        epoch: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.gain
                .partial_cmp(&other.gain)
                .expect("gains are finite")
                // Deterministic tie-break: lower (partition, choice) first.
                .then_with(|| other.partition.cmp(&self.partition))
                .then_with(|| other.choice.cmp(&self.choice))
        }
    }

    let p_total = obj.num_partitions();
    let mut stats = OptimizerStats::default();
    let mut state = obj.new_state();
    let mut choices: Vec<Option<usize>> = vec![None; p_total];
    let total_candidates: usize = (0..p_total).map(|p| obj.num_choices(p)).sum();
    stats.marginal_calls += total_candidates as u64;
    let state_ref = &state;
    let per_partition =
        haste_parallel::par_map_range(p_total, effective_threads(threads, total_candidates), |p| {
            (0..obj.num_choices(p))
                .map(|x| (obj.marginal(state_ref, p, x), x))
                .collect::<Vec<_>>()
        });
    let mut heap = BinaryHeap::new();
    for (p, candidates) in per_partition.into_iter().enumerate() {
        for (gain, x) in candidates {
            if gain > min_gain {
                heap.push(Entry {
                    gain,
                    partition: p,
                    choice: x,
                    epoch: 0,
                });
            }
        }
    }
    let mut epoch = 0usize;
    while let Some(top) = heap.pop() {
        if choices[top.partition].is_some() {
            continue; // partition already filled
        }
        if top.epoch == epoch {
            obj.commit(&mut state, top.partition, top.choice);
            choices[top.partition] = Some(top.choice);
            stats.commit_calls += 1;
            epoch += 1;
        } else {
            let gain = obj.marginal(&state, top.partition, top.choice);
            stats.marginal_calls += 1;
            if gain > min_gain {
                heap.push(Entry {
                    gain,
                    partition: top.partition,
                    choice: top.choice,
                    epoch,
                });
            }
        }
    }
    let value = obj.value(&state);
    (Selection { choices, value }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyCoverage;
    use crate::{brute_force, evaluate_selection};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn locally_greedy_on_example() {
        let toy = ToyCoverage::example();
        let sel = locally_greedy(&toy, &GreedyOptions::default());
        // Greedy: partition 0 picks {2} (4.0 > 3.0)? No: {0,1} covers 1+2=3,
        // {2} covers 4 → picks {2}. Partition 1 then picks {1} (2 > 0).
        assert_eq!(sel.choices, vec![Some(1), Some(0)]);
        assert!((sel.value - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_greedy_matches_value_reporting() {
        let toy = ToyCoverage::example();
        let sel = lazy_greedy(&toy, 0.0);
        assert!((sel.value - evaluate_selection(&toy, &sel.choices)).abs() < 1e-12);
        // Global greedy picks {2} first, then {1}: same value 6.0 here.
        assert!((sel.value - 6.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_respects_half_guarantee_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let toy = ToyCoverage::random(&mut rng, 4, 3, 6, 2);
            let opt = brute_force(&toy, 1 << 16).unwrap();
            for sel in [
                locally_greedy(&toy, &GreedyOptions::default()),
                lazy_greedy(&toy, 0.0),
            ] {
                assert!(
                    sel.value >= 0.5 * opt.value - 1e-9,
                    "greedy {} < half of optimum {}",
                    sel.value,
                    opt.value
                );
            }
        }
    }

    #[test]
    fn custom_order_changes_nothing_for_modular_parts() {
        let toy = ToyCoverage::example();
        let order = [1usize, 0];
        let sel = locally_greedy(
            &toy,
            &GreedyOptions {
                order: Some(&order),
                ..GreedyOptions::default()
            },
        );
        // Partition 1 first picks {2} (4.0), then partition 0 picks {0,1}.
        assert_eq!(sel.choices, vec![Some(0), Some(1)]);
        assert!((sel.value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tie_break_prefers_hinted_choice() {
        // Two identical choices; tie-break should pick the hinted one.
        let toy = ToyCoverage {
            choices: vec![vec![vec![0], vec![0]]],
            weights: vec![1.0],
            cap: 1,
        };
        let hint = |_: &[Option<usize>], _p: usize| Some(1usize);
        let sel = locally_greedy(
            &toy,
            &GreedyOptions {
                tie_break: Some(&hint),
                ..GreedyOptions::default()
            },
        );
        assert_eq!(sel.choices, vec![Some(1)]);
    }

    #[test]
    fn zero_gain_blocks_left_unassigned() {
        let toy = ToyCoverage {
            choices: vec![vec![vec![]], vec![vec![0]]],
            weights: vec![1.0],
            cap: 1,
        };
        for sel in [
            locally_greedy(&toy, &GreedyOptions::default()),
            lazy_greedy(&toy, 0.0),
        ] {
            assert_eq!(sel.choices[0], None);
            assert_eq!(sel.choices[1], Some(0));
        }
    }

    #[test]
    fn empty_objective() {
        let toy = ToyCoverage {
            choices: vec![],
            weights: vec![],
            cap: 1,
        };
        let sel = locally_greedy(&toy, &GreedyOptions::default());
        assert_eq!(sel.value, 0.0);
        assert!(sel.choices.is_empty());
    }

    #[test]
    fn parallel_scan_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..15 {
            let toy = ToyCoverage::random(&mut rng, 8, 5, 12, 3);
            let seq = locally_greedy(&toy, &GreedyOptions::default());
            let par = locally_greedy(
                &toy,
                &GreedyOptions {
                    threads: 4,
                    ..GreedyOptions::default()
                },
            );
            assert_eq!(seq.choices, par.choices);
            assert_eq!(seq.value.to_bits(), par.value.to_bits());
            let (lseq, _) = lazy_greedy_with_stats(&toy, 0.0, 1);
            let (lpar, _) = lazy_greedy_with_stats(&toy, 0.0, 4);
            assert_eq!(lseq.choices, lpar.choices);
            assert_eq!(lseq.value.to_bits(), lpar.value.to_bits());
        }
    }

    #[test]
    fn stats_count_oracle_calls() {
        let toy = ToyCoverage::example();
        let (sel, stats) = locally_greedy_with_stats(&toy, &GreedyOptions::default());
        // One marginal per (partition, choice) pair, one commit per chosen.
        let expected: u64 = (0..toy.num_partitions())
            .map(|p| toy.num_choices(p) as u64)
            .sum();
        assert_eq!(stats.marginal_calls, expected);
        assert_eq!(stats.commit_calls, sel.num_chosen() as u64);

        let (lsel, lstats) = lazy_greedy_with_stats(&toy, 0.0, 1);
        // Lazy greedy pays at least the initial sweep and exactly one commit
        // per chosen partition; re-evaluations only add to the count.
        assert!(lstats.marginal_calls >= expected);
        assert_eq!(lstats.commit_calls, lsel.num_chosen() as u64);
    }
}
