//! The TabularGreedy algorithm of Streeter–Golovin–Krause, tailored to the
//! HASTE setting as in Algorithm 2 of the paper.
//!
//! TabularGreedy maintains a table with one row per partition and `C`
//! columns ("colors"). For each color in turn it greedily assigns every
//! partition the element maximizing the *expected* objective
//! `F(Q) = E_c[f(sample_c(Q))]`, where `sample_c` keeps, in each partition,
//! the element labeled with that partition's random color. As `C → ∞` the
//! guarantee approaches `1 − 1/e`; `C = 1` is exactly the locally greedy
//! algorithm (guarantee `1/2`).
//!
//! `F` has no closed form for the non-linear HASTE utility, so — following
//! the original paper — it is estimated by Monte-Carlo over color vectors.
//! This implementation keeps `N` sampled color vectors with one incremental
//! oracle state each ("common random numbers"): a candidate `(element, c)`
//! only affects samples whose color for that partition equals `c`, so each
//! estimated marginal costs `≈ N/C` cheap oracle calls.
//!
//! Rounding: instead of drawing one fresh random color vector at the end
//! (Algorithm 2, line 7–8), the implementation returns the best of the `N`
//! sampled vectors — their induced solutions are already materialized in the
//! per-sample states, and a maximum over samples can only beat the
//! expectation the guarantee is stated for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::greedy::effective_threads;
use crate::{evaluate_selection, OptimizerStats, PartitionedObjective, Selection};

/// Options for [`tabular_greedy`].
#[derive(Debug, Clone)]
pub struct TabularOptions {
    /// Number of colors `C` (≥ 1). The approximation ratio is
    /// `1 − (1 − 1/C)^C − O(C⁻¹)`, approaching `1 − 1/e`.
    pub colors: usize,
    /// Number of Monte-Carlo color-vector samples used to estimate the
    /// expectation (ignored when `colors == 1`). More samples reduce the
    /// estimator's variance at linear cost.
    pub samples: usize,
    /// RNG seed (colors and rounding are the only randomness).
    pub seed: u64,
    /// Elements whose estimated **per-sample average** marginal gain is ≤
    /// this stay unassigned. The same scale as a single oracle marginal, so
    /// the threshold means the same thing regardless of how many samples
    /// happen to realize a color.
    pub min_gain: f64,
    /// Worker threads for the per-candidate argmax scans (1 = sequential,
    /// 0 = auto-detect via `haste_parallel::default_threads`). Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl Default for TabularOptions {
    fn default() -> Self {
        TabularOptions {
            colors: 4,
            samples: 16,
            seed: 0,
            min_gain: 0.0,
            threads: 1,
        }
    }
}

/// Total-order maximum over `(gain, candidate index)`: higher gain wins,
/// exact ties go to the lower index. Associative and commutative (gains are
/// finite), so a parallel reduction yields the same result as a sequential
/// first-max-wins scan for any thread count.
fn better(a: Option<(f64, usize)>, b: Option<(f64, usize)>) -> Option<(f64, usize)> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((ag, ax)), Some((bg, bx))) => {
            if bg > ag || (bg == ag && bx < ax) {
                Some((bg, bx))
            } else {
                Some((ag, ax))
            }
        }
    }
}

/// Runs TabularGreedy and returns the best sampled rounding.
///
/// With `colors == 1` this is the deterministic locally greedy algorithm
/// (single sample, color always matching).
pub fn tabular_greedy<O: PartitionedObjective>(obj: &O, options: &TabularOptions) -> Selection {
    tabular_greedy_with_stats(obj, options).0
}

/// [`tabular_greedy`] that also reports oracle-call counts.
pub fn tabular_greedy_with_stats<O: PartitionedObjective>(
    obj: &O,
    options: &TabularOptions,
) -> (Selection, OptimizerStats) {
    let c_total = options.colors.max(1);
    if c_total == 1 {
        return crate::locally_greedy_with_stats(
            obj,
            &crate::GreedyOptions {
                min_gain: options.min_gain,
                threads: options.threads,
                ..crate::GreedyOptions::default()
            },
        );
    }
    let p_total = obj.num_partitions();
    let n_samples = options.samples.max(1);
    let mut stats = OptimizerStats::default();
    let mut rng = StdRng::seed_from_u64(options.seed);

    // colors[s][p]: the color sample `s` assigns to partition `p`.
    let colors: Vec<Vec<usize>> = (0..n_samples)
        .map(|_| (0..p_total).map(|_| rng.gen_range(0..c_total)).collect())
        .collect();
    let mut states: Vec<O::State> = (0..n_samples).map(|_| obj.new_state()).collect();
    // table[p][c]: the element chosen for partition p at color c.
    let mut table: Vec<Vec<Option<usize>>> = vec![vec![None; c_total]; p_total];

    let all_samples: Vec<usize> = (0..n_samples).collect();
    let mut matching: Vec<usize> = Vec::with_capacity(n_samples);
    // `c` and `p` index several tables at once; the explicit ranges mirror
    // the paper's two-level loop.
    #[allow(clippy::needless_range_loop)]
    for c in 0..c_total {
        for p in 0..p_total {
            let choices = obj.num_choices(p);
            if choices == 0 {
                continue;
            }
            matching.clear();
            matching.extend((0..n_samples).filter(|&s| colors[s][p] == c));
            // No sample realizes this color here → estimate over all samples
            // as a proxy; nothing gets committed in that case.
            let scan: &[usize] = if matching.is_empty() {
                &all_samples
            } else {
                &matching
            };
            let cnt = scan.len();
            stats.marginal_calls += (choices * cnt) as u64;
            // Candidates are independent; scan them across threads with a
            // total-order max reduction. Per-candidate gains sum over the
            // matching samples sequentially, so every thread count produces
            // the exact same floats.
            let states_ref = &states;
            let best = haste_parallel::par_reduce_range(
                choices,
                effective_threads(options.threads, choices.saturating_mul(cnt)),
                None,
                |x| {
                    let sum: f64 = scan
                        .iter()
                        .map(|&s| obj.marginal(&states_ref[s], p, x))
                        .sum();
                    // Per-sample average: keeps the argmax of the sum (all
                    // candidates divide by the same count) while putting the
                    // estimate on the same scale as `min_gain`.
                    Some((sum / cnt as f64, x))
                },
                better,
            );
            if let Some((gain, x)) = best {
                if gain > options.min_gain {
                    table[p][c] = Some(x);
                    stats.commit_calls += matching.len() as u64;
                    for &s in &matching {
                        obj.commit(&mut states[s], p, x);
                    }
                }
            }
        }
    }

    // Rounding: each sampled color vector induces a solution whose state we
    // already hold; return the best one.
    let mut best_sel: Option<Selection> = None;
    for (s, state) in states.iter().enumerate() {
        let value = obj.value(state);
        if best_sel.as_ref().is_none_or(|b| value > b.value) {
            let choices: Vec<Option<usize>> =
                (0..p_total).map(|p| table[p][colors[s][p]]).collect();
            best_sel = Some(Selection { choices, value });
        }
    }
    let sel = best_sel.unwrap_or_else(|| Selection::empty(p_total));
    debug_assert!(
        (sel.value - evaluate_selection(obj, &sel.choices)).abs() <= 1e-9 * (1.0 + sel.value.abs()),
        "sample state diverged from replay"
    );
    (sel, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyCoverage;
    use crate::{brute_force, locally_greedy, GreedyOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c1_equals_locally_greedy() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let toy = ToyCoverage::random(&mut rng, 6, 4, 8, 2);
            let tab = tabular_greedy(
                &toy,
                &TabularOptions {
                    colors: 1,
                    samples: 5,
                    seed: 9,
                    ..TabularOptions::default()
                },
            );
            let greedy = locally_greedy(&toy, &GreedyOptions::default());
            assert_eq!(tab.choices, greedy.choices);
            assert!((tab.value - greedy.value).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_half_guarantee() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..25 {
            let toy = ToyCoverage::random(&mut rng, 5, 3, 6, 2);
            let opt = brute_force(&toy, 1 << 20).unwrap();
            let tab = tabular_greedy(
                &toy,
                &TabularOptions {
                    colors: 4,
                    samples: 32,
                    seed: trial,
                    ..TabularOptions::default()
                },
            );
            assert!(
                tab.value >= 0.5 * opt.value - 1e-9,
                "trial {trial}: tabular {} < half of {}",
                tab.value,
                opt.value
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let toy = ToyCoverage::random(&mut rng, 8, 4, 10, 2);
        let opts = TabularOptions {
            colors: 3,
            samples: 16,
            seed: 1234,
            ..TabularOptions::default()
        };
        let a = tabular_greedy(&toy, &opts);
        let b = tabular_greedy(&toy, &opts);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn reported_value_matches_replay() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..10 {
            let toy = ToyCoverage::random(&mut rng, 6, 4, 8, 3);
            let tab = tabular_greedy(
                &toy,
                &TabularOptions {
                    colors: 4,
                    samples: 8,
                    seed: trial,
                    ..TabularOptions::default()
                },
            );
            let replay = crate::evaluate_selection(&toy, &tab.choices);
            assert!((tab.value - replay).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_instance() {
        let toy = ToyCoverage {
            choices: vec![],
            weights: vec![],
            cap: 1,
        };
        let tab = tabular_greedy(&toy, &TabularOptions::default());
        assert_eq!(tab.value, 0.0);
    }

    #[test]
    fn more_colors_helps_on_adversarial_instance() {
        // The classic locally-greedy trap: partition 0 can take item A
        // (value 1) or item B (value 1); partition 1 can only take A.
        // Greedy (C=1) may take A in partition 0 and waste partition 1.
        // With ties broken toward lower indices, choice layout forces it.
        let toy = ToyCoverage {
            choices: vec![vec![vec![0], vec![1]], vec![vec![0]]],
            weights: vec![1.0, 1.0],
            cap: 1,
        };
        let greedy = locally_greedy(&toy, &GreedyOptions::default());
        assert!((greedy.value - 1.0).abs() < 1e-12, "greedy trapped at 1.0");
        let tab = tabular_greedy(
            &toy,
            &TabularOptions {
                colors: 8,
                samples: 64,
                seed: 2,
                ..TabularOptions::default()
            },
        );
        assert!(
            tab.value >= greedy.value - 1e-12,
            "tabular should not be worse"
        );
        // With many colors/samples, tabular should find the 2.0 solution.
        assert!((tab.value - 2.0).abs() < 1e-9, "tabular {}", tab.value);
    }

    #[test]
    fn parallel_scan_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let toy = ToyCoverage::random(&mut rng, 8, 5, 12, 2);
            let base = TabularOptions {
                colors: 4,
                samples: 16,
                seed: trial,
                ..TabularOptions::default()
            };
            let seq = tabular_greedy(&toy, &base);
            let par = tabular_greedy(
                &toy,
                &TabularOptions {
                    threads: 4,
                    ..base.clone()
                },
            );
            assert_eq!(seq.choices, par.choices);
            assert_eq!(seq.value.to_bits(), par.value.to_bits());
        }
    }

    #[test]
    fn min_gain_is_per_sample_average() {
        // Every element delivers exactly 1.0 per sample (cap 1, single item
        // of weight 1 per choice). A threshold just below the per-sample
        // unit gain keeps everything; just above it must reject everything,
        // regardless of how many samples realize each color — the historic
        // bug scaled the empty-color fallback by n_samples while
        // thresholding as if one sample matched, inflating gains 16×.
        let toy = ToyCoverage {
            choices: vec![vec![vec![0]], vec![vec![1]], vec![vec![2]]],
            weights: vec![1.0; 3],
            cap: 1,
        };
        let base = TabularOptions {
            colors: 4,
            samples: 16,
            seed: 7,
            ..TabularOptions::default()
        };
        let keep = tabular_greedy(
            &toy,
            &TabularOptions {
                min_gain: 0.99,
                ..base.clone()
            },
        );
        assert_eq!(keep.num_chosen(), 3, "unit gains exceed 0.99");
        let reject = tabular_greedy(
            &toy,
            &TabularOptions {
                min_gain: 1.01,
                ..base
            },
        );
        assert_eq!(reject.num_chosen(), 0, "no per-sample gain exceeds 1.01");
    }

    #[test]
    fn stats_are_sane_and_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(13);
        let toy = ToyCoverage::random(&mut rng, 8, 4, 10, 2);
        let opts = TabularOptions {
            colors: 4,
            samples: 16,
            seed: 3,
            ..TabularOptions::default()
        };
        let (sel, stats) = tabular_greedy_with_stats(&toy, &opts);
        assert!(stats.marginal_calls > 0);
        assert!(stats.commit_calls as usize >= sel.num_chosen());
        let (_, stats4) = tabular_greedy_with_stats(&toy, &TabularOptions { threads: 4, ..opts });
        // Counters are arithmetic, not sampled: identical across threads.
        assert_eq!(stats, stats4);
    }
}
