//! The normative metric catalog: every series name the service stack may
//! emit, its kind, label key, legacy `METRICS?` alias, and help text.
//!
//! This table and the schema table in `docs/service_protocol.md` are
//! cross-checked both ways by `haste-lint` rule C2, which parses this
//! file **textually**: keep each entry on a single line, built by one of
//! the `counter(` / `gauge(` / `gauge_max(` / `histogram(` helpers, with
//! the name first, the label key second, and (for counters and gauges)
//! the legacy alias third. Empty strings mean "no label" / "no alias".
//!
//! Naming schema (normative): `haste_<subsystem>_<name>_<unit>`, ASCII
//! snake case. Counters end in `_total`; histograms end in `_us` or
//! `_records`; gauges end in `_slots`, `_tasks`, `_threads`, or
//! `_shards`. Labels are drawn from `cell`, `opcode`, `err_code`,
//! `tenant`.

use crate::{GaugeMerge, Kind};

/// One catalog row.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Series family name, `haste_<subsystem>_<name>_<unit>`.
    pub name: &'static str,
    /// Instrument kind.
    pub kind: Kind,
    /// Label key (`""` for unlabeled families).
    pub label: &'static str,
    /// Legacy `METRICS?` key this family aliases (`""` for none).
    pub alias: &'static str,
    /// Cross-shard merge semantics (meaningful for gauges).
    pub merge: GaugeMerge,
    /// Exposition `# HELP` text.
    pub help: &'static str,
}

const fn counter(
    name: &'static str,
    label: &'static str,
    alias: &'static str,
    help: &'static str,
) -> MetricSpec {
    MetricSpec {
        name,
        kind: Kind::Counter,
        label,
        alias,
        merge: GaugeMerge::Sum,
        help,
    }
}

const fn gauge(
    name: &'static str,
    label: &'static str,
    alias: &'static str,
    help: &'static str,
) -> MetricSpec {
    MetricSpec {
        name,
        kind: Kind::Gauge,
        label,
        alias,
        merge: GaugeMerge::Sum,
        help,
    }
}

const fn gauge_max(
    name: &'static str,
    label: &'static str,
    alias: &'static str,
    help: &'static str,
) -> MetricSpec {
    MetricSpec {
        name,
        kind: Kind::Gauge,
        label,
        alias,
        merge: GaugeMerge::Max,
        help,
    }
}

const fn histogram(name: &'static str, label: &'static str, help: &'static str) -> MetricSpec {
    MetricSpec {
        name,
        kind: Kind::Histogram,
        label,
        alias: "",
        merge: GaugeMerge::Sum,
        help,
    }
}

/// Every metric family the stack emits. One entry per line — C2 parses
/// this list textually and cross-checks it against the schema table in
/// `docs/service_protocol.md` (hence the rustfmt skip).
#[rustfmt::skip]
pub const CATALOG: &[MetricSpec] = &[
    counter("haste_service_requests_total", "opcode", "", "Requests handled at this endpoint, by wire opcode."),
    counter("haste_service_errors_total", "err_code", "", "Error replies sent at this endpoint, by stable error code."),
    histogram("haste_service_request_duration_us", "opcode", "Request handling latency at this endpoint in microseconds, by wire opcode."),
    histogram("haste_service_batch_size_records", "", "Records carried per OP_BATCH submission frame."),
    histogram("haste_service_batch_rejected_records", "", "Records rejected per OP_BATCH submission frame."),
    counter("haste_shard_requests_total", "opcode", "", "Requests handled by out-of-process shard children, merged across shards."),
    counter("haste_shard_errors_total", "err_code", "", "Error replies sent by shard children, merged across shards."),
    histogram("haste_shard_request_duration_us", "opcode", "Supervisor-to-child request latency in microseconds, merged bucket-wise across shards."),
    histogram("haste_shard_batch_size_records", "", "Records per batch frame at shard children, merged across shards."),
    histogram("haste_shard_batch_rejected_records", "", "Records rejected per batch frame at shard children, merged across shards."),
    histogram("haste_router_tick_replan_duration_us", "cell", "Per-shard TICK replan duration in microseconds, by cell index."),
    histogram("haste_router_join_wait_duration_us", "cell", "Time a finished shard waits at the consistent-cut TICK barrier, by cell index."),
    counter("haste_router_cell_submits_total", "cell", "", "Submissions accepted into each cell of the default tenant, by cell index — the elastic-split load trigger."),
    counter("haste_router_reshards_total", "tenant", "", "Completed live split/merge migrations, by tenant id."),
    counter("haste_router_tenant_rejected_total", "tenant", "", "Submissions bounced by a tenant's per-slot admission quota, by tenant id."),
    gauge("haste_router_tenant_shards", "tenant", "", "Shards currently serving each tenant, by tenant id."),
    histogram("haste_wal_append_duration_us", "", "Write-ahead-log record append latency in microseconds (framing plus file write, excluding fsync)."),
    histogram("haste_wal_fsync_duration_us", "", "Write-ahead-log fsync latency in microseconds, at the configured durability points."),
    counter("haste_wal_checkpoints_total", "tenant", "", "Checkpoints written (snapshot to temp, fsync, atomic rename, log truncate), by tenant id."),
    counter("haste_wal_replayed_ops_total", "tenant", "", "Log-tail operations replayed on top of a checkpoint during crash recovery, by tenant id."),
    counter("haste_wal_recoveries_total", "tenant", "", "Tenants recovered from the write-ahead-log directory at router startup, by tenant id."),
    counter("haste_supervisor_restarts_total", "cell", "shard_restarts", "Shard child restarts performed by the supervisor, by cell index."),
    counter("haste_supervisor_replays_total", "cell", "shard_replays", "Journaled operations replayed into restarted shard children, by cell index."),
    counter("haste_supervisor_deadline_expired_total", "cell", "", "Supervisor requests that hit the per-request deadline, by cell index."),
    gauge("haste_supervisor_down_shards", "", "shards_down", "Shards currently down or restarting."),
    gauge_max("haste_engine_clock_slots", "", "clock", "Engine virtual clock: the open slot index (max across shards)."),
    gauge("haste_engine_active_tasks", "", "tasks", "Tasks materialized into the engine scenario."),
    gauge("haste_engine_staged_tasks", "", "staged", "Tasks staged for future release slots."),
    counter("haste_engine_admitted_total", "", "admitted", "Submissions admitted since load."),
    counter("haste_engine_rejected_total", "", "rejected", "Submissions rejected by admission control since load."),
    gauge("haste_engine_pending_tasks", "", "pending", "Submissions waiting in the open slot."),
    gauge_max("haste_engine_worker_threads", "", "threads", "Engine worker threads (max across shards)."),
    counter("haste_engine_oracle_marginals_total", "", "oracle_marginals", "Marginal-gain oracle evaluations."),
    counter("haste_engine_oracle_commits_total", "", "oracle_commits", "Oracle commit operations."),
    counter("haste_engine_negotiation_messages_total", "", "messages", "Negotiation messages exchanged between chargers."),
    counter("haste_engine_negotiation_rounds_total", "", "rounds", "Negotiation rounds executed."),
    counter("haste_engine_instance_build_us_total", "", "instance_build_us", "Cumulative microseconds building slot instances."),
    counter("haste_engine_greedy_us_total", "", "greedy_us", "Cumulative microseconds in the greedy solve phase."),
    counter("haste_engine_rounding_us_total", "", "rounding_us", "Cumulative microseconds in the rounding phase."),
    counter("haste_engine_coverage_build_us_total", "", "coverage_build_us", "Cumulative microseconds building coverage structures."),
];

/// Looks up a family by name.
pub fn spec(name: &str) -> Option<&'static MetricSpec> {
    CATALOG.iter().find(|spec| spec.name == name)
}

/// The merge semantics for a gauge family; uncataloged names sum.
pub fn gauge_merge(name: &str) -> GaugeMerge {
    match spec(name) {
        Some(spec) => spec.merge,
        None => GaugeMerge::Sum,
    }
}

/// The schema family aliasing one legacy `METRICS?` key, if any.
pub fn schema_for_alias(alias: &str) -> Option<&'static MetricSpec> {
    if alias.is_empty() {
        return None;
    }
    CATALOG.iter().find(|spec| spec.alias == alias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_schema_shaped() {
        for (index, spec) in CATALOG.iter().enumerate() {
            assert!(
                spec.name.starts_with("haste_"),
                "`{}` must start with haste_",
                spec.name
            );
            assert!(
                crate::Snapshot::parse(&format!("# TYPE {} counter\n{} 0\n", spec.name, spec.name))
                    .is_ok(),
                "`{}` must be a valid exposition name",
                spec.name
            );
            for other in &CATALOG[index + 1..] {
                assert_ne!(spec.name, other.name, "duplicate catalog name");
            }
        }
    }

    #[test]
    fn aliases_are_unique() {
        for (index, spec) in CATALOG.iter().enumerate() {
            if spec.alias.is_empty() {
                continue;
            }
            assert_eq!(
                schema_for_alias(spec.alias).map(|s| s.name),
                Some(spec.name)
            );
            for other in &CATALOG[index + 1..] {
                assert_ne!(spec.alias, other.alias, "duplicate legacy alias");
            }
        }
    }

    #[test]
    fn unit_suffixes_follow_the_schema() {
        for spec in CATALOG {
            match spec.kind {
                Kind::Counter => assert!(
                    spec.name.ends_with("_total"),
                    "counter `{}` must end in _total",
                    spec.name
                ),
                Kind::Histogram => assert!(
                    spec.name.ends_with("_us") || spec.name.ends_with("_records"),
                    "histogram `{}` must end in _us or _records",
                    spec.name
                ),
                Kind::Gauge => assert!(
                    ["_slots", "_tasks", "_threads", "_shards"]
                        .iter()
                        .any(|unit| spec.name.ends_with(unit)),
                    "gauge `{}` must end in a sanctioned unit",
                    spec.name
                ),
            }
        }
    }
}
