//! `haste-metrics` — the typed observability registry for the HASTE
//! service stack.
//!
//! Three instrument kinds, all safe on the request path:
//!
//! * [`Counter`] — a monotone `u64`,
//! * [`Gauge`] — a last-write-wins `u64`,
//! * [`Histogram`] — fixed log-spaced (1-2-5 decade) bucket boundaries in
//!   microseconds, shared by every histogram in the system so per-shard
//!   histograms merge bucket-wise with no resampling.
//!
//! Handles are `Arc`-backed and lock-free to record into: the registry
//! mutex is touched only when a handle is first created and when a
//! [`Snapshot`] is taken. The crate deliberately has **no clock** — it
//! never reads wall time; callers measure durations and pass them in, so
//! the deterministic scheduling paths stay free of time sources.
//!
//! A [`Snapshot`] is the frozen, mergeable view: it renders to
//! Prometheus-style text exposition ([`Snapshot::render`]) and parses
//! back from it ([`Snapshot::parse`]), which is how out-of-process shard
//! children ship their registries to the router. Merging is bucket-wise
//! for histograms and wrapping-add for counters, so it is associative
//! and commutative: merge order never changes the rendered output.
//!
//! Metric names follow the normative schema in
//! `docs/service_protocol.md` (`haste_<subsystem>_<name>_<unit>`); the
//! full set, with legacy `METRICS?` key aliases, lives in [`catalog`].

pub mod catalog;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shared histogram bucket upper bounds, in microseconds: a 1-2-5
/// sequence across nine decades, 1 µs to 1000 s. Every value above the
/// last bound lands in the implicit `+Inf` overflow bucket. The bounds
/// are integers (exactly representable as `f64`), so bucket assignment
/// and rendered `le` labels are bit-identical on every platform.
pub const BUCKET_BOUNDS_US: [u64; 28] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
];

/// Bucket count including the `+Inf` overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_US.len() + 1;

/// The instrument kinds the registry can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Log-bucketed distribution over [`BUCKET_BOUNDS_US`].
    Histogram,
}

/// How two samples of the same gauge combine when snapshots merge.
/// Counters and histograms always sum; gauges declare their semantics in
/// the [`catalog`] (e.g. shard clocks take the max, pending queues sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeMerge {
    /// Sum across shards (queue depths, task counts).
    Sum,
    /// Maximum across shards (clocks, per-process thread counts).
    Max,
}

/// Maps a measured value (microseconds) onto its bucket index. Total
/// over all `f64`: `NaN` and values above the last bound land in the
/// overflow bucket, negatives and `-inf` in the first. Deterministic —
/// the bounds are exact integers and the comparison is exact.
pub fn bucket_index(value_us: f64) -> usize {
    if value_us.is_nan() {
        return BUCKET_BOUNDS_US.len();
    }
    BUCKET_BOUNDS_US.partition_point(|&bound| (bound as f64) < value_us)
}

/// The microsecond contribution one observation adds to a histogram
/// sum: clamped to `[0, u64::MAX]`, `NaN` contributes zero. Sums are
/// kept as integers so merging is exact and order-independent.
fn sum_contribution(value_us: f64) -> u64 {
    if value_us.is_finite() && value_us > 0.0 {
        // The cast saturates at u64::MAX for out-of-range values.
        value_us.round() as u64
    } else {
        0
    }
}

// ----------------------------------------------------------------------
// Instruments
// ----------------------------------------------------------------------

/// A monotone counter handle. Cloning shares the underlying cell;
/// `Default` yields a detached cell visible to no registry.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Replaces the level.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_us: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed distribution handle. Recording is two relaxed atomic
/// adds — no locks, no allocation, no panic path.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }
}

impl Histogram {
    /// Records one observation, in microseconds.
    pub fn observe(&self, value_us: f64) {
        self.observe_n(value_us, 1);
    }

    /// Records `n` observations of the same value — the batched-frame
    /// path, where one measured frame duration stands for every record
    /// it carried (keeping histogram counts equal to record counts).
    pub fn observe_n(&self, value_us: f64, n: u64) {
        if n == 0 {
            return;
        }
        let index = bucket_index(value_us).min(BUCKET_COUNT - 1);
        self.core.buckets[index].fetch_add(n, Ordering::Relaxed);
        self.core.sum_us.fetch_add(
            sum_contribution(value_us).saturating_mul(n),
            Ordering::Relaxed,
        );
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn load(&self) -> (Vec<u64>, u128) {
        (
            self.core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            u128::from(self.core.sum_us.load(Ordering::Relaxed)),
        )
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

enum SeriesCell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: Kind,
    label_key: &'static str,
    series: BTreeMap<String, SeriesCell>,
}

/// The typed instrument registry. One per process endpoint; handles are
/// created once at wiring time and recorded into lock-free afterwards.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Family>> {
        // A panic while holding the lock cannot corrupt a BTreeMap of
        // atomics in a way reads care about; recover and continue.
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series(
        &self,
        name: &'static str,
        kind: Kind,
        label_key: &'static str,
        label_value: &str,
    ) -> Option<SeriesCell> {
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            kind,
            label_key,
            series: BTreeMap::new(),
        });
        if family.kind != kind || family.label_key != label_key {
            // A name registered twice with conflicting shapes: refuse to
            // alias; the caller gets a detached instrument instead of a
            // panic on the request path.
            return None;
        }
        let cell = family
            .series
            .entry(label_value.to_string())
            .or_insert_with(|| match kind {
                Kind::Counter => SeriesCell::Counter(Counter::default()),
                Kind::Gauge => SeriesCell::Gauge(Gauge::default()),
                Kind::Histogram => SeriesCell::Histogram(Histogram::default()),
            });
        Some(match cell {
            SeriesCell::Counter(c) => SeriesCell::Counter(c.clone()),
            SeriesCell::Gauge(g) => SeriesCell::Gauge(g.clone()),
            SeriesCell::Histogram(h) => SeriesCell::Histogram(h.clone()),
        })
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, "", "")
    }

    /// The counter series `name{label_key="label_value"}`.
    pub fn counter_with(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Counter {
        match self.series(name, Kind::Counter, label_key, label_value) {
            Some(SeriesCell::Counter(c)) => c,
            _ => Counter::default(),
        }
    }

    /// The unlabeled gauge `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, "", "")
    }

    /// The gauge series `name{label_key="label_value"}`.
    pub fn gauge_with(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Gauge {
        match self.series(name, Kind::Gauge, label_key, label_value) {
            Some(SeriesCell::Gauge(g)) => g,
            _ => Gauge::default(),
        }
    }

    /// The unlabeled histogram `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, "", "")
    }

    /// The histogram series `name{label_key="label_value"}`.
    pub fn histogram_with(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Histogram {
        match self.series(name, Kind::Histogram, label_key, label_value) {
            Some(SeriesCell::Histogram(h)) => h,
            _ => Histogram::default(),
        }
    }

    /// Freezes the registry into a mergeable, renderable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let families = self.lock();
        let mut snap = Snapshot::new();
        for (name, family) in families.iter() {
            for (label_value, cell) in family.series.iter() {
                let labels: Vec<(String, String)> = if family.label_key.is_empty() {
                    Vec::new()
                } else {
                    vec![(family.label_key.to_string(), label_value.clone())]
                };
                let key = SeriesKey {
                    name: name.to_string(),
                    labels,
                };
                let value = match cell {
                    SeriesCell::Counter(c) => Value::Counter(u128::from(c.get())),
                    SeriesCell::Gauge(g) => Value::Gauge(u128::from(g.get())),
                    SeriesCell::Histogram(h) => {
                        let (buckets, sum_us) = h.load();
                        Value::Histogram { buckets, sum_us }
                    }
                };
                snap.samples.insert(key, value);
            }
        }
        snap
    }
}

// ----------------------------------------------------------------------
// Snapshots: the frozen, mergeable, renderable view
// ----------------------------------------------------------------------

/// Identity of one time series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric (family) name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

/// One sample value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Counter total.
    Counter(u128),
    /// Gauge level.
    Gauge(u128),
    /// Per-bucket (non-cumulative) counts over [`BUCKET_BOUNDS_US`] plus
    /// the overflow bucket, and the integer-microsecond sum.
    Histogram {
        /// Non-cumulative bucket counts, `BUCKET_COUNT` entries.
        buckets: Vec<u64>,
        /// Sum of observations in whole microseconds.
        sum_us: u128,
    },
}

/// A frozen set of samples: what `EXPORT?` renders, what the router
/// merges across shards, and what scrape validation parses back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    samples: BTreeMap<SeriesKey, Value>,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Inserts (or overwrites) a counter sample.
    pub fn set_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u128) {
        self.samples
            .insert(make_key(name, labels), Value::Counter(value));
    }

    /// Inserts (or overwrites) a gauge sample. Its merge semantics come
    /// from the [`catalog`] at merge time.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u128) {
        self.samples
            .insert(make_key(name, labels), Value::Gauge(value));
    }

    /// Inserts (or overwrites) a histogram sample. Bucket vectors shorter
    /// than [`BUCKET_COUNT`] are zero-padded.
    pub fn set_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        mut buckets: Vec<u64>,
        sum_us: u128,
    ) {
        buckets.resize(BUCKET_COUNT, 0);
        self.samples
            .insert(make_key(name, labels), Value::Histogram { buckets, sum_us });
    }

    /// Iterates all samples in deterministic (name, labels) order.
    pub fn samples(&self) -> impl Iterator<Item = (&SeriesKey, &Value)> {
        self.samples.iter()
    }

    /// Looks up one sample.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Value> {
        self.samples.get(&make_key(name, labels))
    }

    /// Drops every family whose name does not start with `prefix`.
    pub fn retain_prefix(&mut self, prefix: &str) {
        self.samples.retain(|key, _| key.name.starts_with(prefix));
    }

    /// Renames every family starting with `from` to start with `to`
    /// instead — how the router files a child's `haste_service_*`
    /// families under the `haste_shard_*` tier before merging.
    pub fn rename_prefix(&mut self, from: &str, to: &str) {
        let samples = std::mem::take(&mut self.samples);
        for (mut key, value) in samples {
            if let Some(rest) = key.name.strip_prefix(from) {
                key.name = format!("{to}{rest}");
            }
            self.samples.insert(key, value);
        }
    }

    /// Merges `other` into `self`, series by series: counters and
    /// histogram buckets/sums add (wrapping, hence associative and
    /// commutative — merge order never changes the rendered output),
    /// gauges combine per their [`catalog`] merge mode. A kind conflict
    /// between same-named series keeps the left operand.
    pub fn merge(&mut self, other: Snapshot) {
        for (key, incoming) in other.samples {
            match self.samples.get_mut(&key) {
                None => {
                    self.samples.insert(key, incoming);
                }
                Some(existing) => match (existing, incoming) {
                    (Value::Counter(a), Value::Counter(b)) => *a = a.wrapping_add(b),
                    (Value::Gauge(a), Value::Gauge(b)) => {
                        *a = match catalog::gauge_merge(&key.name) {
                            GaugeMerge::Sum => a.wrapping_add(b),
                            GaugeMerge::Max => (*a).max(b),
                        };
                    }
                    (
                        Value::Histogram { buckets, sum_us },
                        Value::Histogram {
                            buckets: other_buckets,
                            sum_us: other_sum,
                        },
                    ) => {
                        if buckets.len() < other_buckets.len() {
                            buckets.resize(other_buckets.len(), 0);
                        }
                        for (slot, add) in buckets.iter_mut().zip(other_buckets.iter()) {
                            *slot = slot.wrapping_add(*add);
                        }
                        *sum_us = sum_us.wrapping_add(other_sum);
                    }
                    // Kind conflict: keep the left operand.
                    (_, _) => {}
                },
            }
        }
    }

    /// Renders Prometheus-style text exposition: `# HELP` and `# TYPE`
    /// per family (help text from the [`catalog`]), then one sample line
    /// per series; histograms expand to cumulative `_bucket` lines plus
    /// `_sum`/`_count`. All values are integers — no float formatting —
    /// so the text is bit-stable across platforms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut current_family: Option<&str> = None;
        for (key, value) in self.samples.iter() {
            if current_family != Some(key.name.as_str()) {
                current_family = Some(key.name.as_str());
                let help = match catalog::spec(&key.name) {
                    Some(spec) => spec.help,
                    None => "Uncataloged metric.",
                };
                let kind = match value {
                    Value::Counter(_) => "counter",
                    Value::Gauge(_) => "gauge",
                    Value::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", key.name, help));
                out.push_str(&format!("# TYPE {} {}\n", key.name, kind));
            }
            match value {
                Value::Counter(v) | Value::Gauge(v) => {
                    out.push_str(&key.name);
                    render_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                Value::Histogram { buckets, sum_us } => {
                    let mut cumulative: u64 = 0;
                    for (index, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                        cumulative =
                            cumulative.wrapping_add(buckets.get(index).copied().unwrap_or(0));
                        out.push_str(&format!("{}_bucket", key.name));
                        render_labels(&mut out, &key.labels, Some(&bound.to_string()));
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    cumulative = cumulative
                        .wrapping_add(buckets.get(BUCKET_COUNT - 1).copied().unwrap_or(0));
                    out.push_str(&format!("{}_bucket", key.name));
                    render_labels(&mut out, &key.labels, Some("+Inf"));
                    out.push_str(&format!(" {cumulative}\n"));
                    out.push_str(&format!("{}_sum", key.name));
                    render_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {sum_us}\n"));
                    out.push_str(&format!("{}_count", key.name));
                    render_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {cumulative}\n"));
                }
            }
        }
        out
    }

    /// Parses text exposition back into a snapshot — the inverse of
    /// [`render`](Snapshot::render) for documents this crate produced,
    /// and a strict validator for scrape output: every line must be
    /// `# HELP`, `# TYPE`, or `name{labels} value`, histograms must use
    /// exactly [`BUCKET_BOUNDS_US`] with monotone cumulative counts, and
    /// every sample must belong to a `# TYPE`-declared family.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut kinds: BTreeMap<String, Kind> = BTreeMap::new();
        let mut snap = Snapshot::new();
        // Histogram accumulator: (family, labels-without-le) -> state.
        let mut partials: BTreeMap<SeriesKey, HistogramPartial> = BTreeMap::new();
        for (number, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut fields = rest.splitn(3, ' ');
                let directive = fields.next().unwrap_or("");
                let name = fields.next().unwrap_or("");
                match directive {
                    "HELP" if !name.is_empty() => continue,
                    "TYPE" => {
                        let kind = match fields.next() {
                            Some("counter") => Kind::Counter,
                            Some("gauge") => Kind::Gauge,
                            Some("histogram") => Kind::Histogram,
                            other => {
                                return Err(format!(
                                    "line {}: bad TYPE `{}`",
                                    number + 1,
                                    other.unwrap_or("")
                                ))
                            }
                        };
                        kinds.insert(name.to_string(), kind);
                        continue;
                    }
                    _ => return Err(format!("line {}: bad comment `{line}`", number + 1)),
                }
            }
            let (series, value_text) = split_sample_line(line)
                .ok_or_else(|| format!("line {}: bad sample `{line}`", number + 1))?;
            let value: u128 = value_text
                .parse()
                .map_err(|_| format!("line {}: bad value `{value_text}`", number + 1))?;
            let (key, labels) = series;
            if let Some(kind) = kinds.get(&key) {
                // A scalar family sample.
                match kind {
                    Kind::Counter => snap.samples.insert(
                        SeriesKey {
                            name: key,
                            labels,
                        },
                        Value::Counter(value),
                    ),
                    Kind::Gauge => snap.samples.insert(
                        SeriesKey {
                            name: key,
                            labels,
                        },
                        Value::Gauge(value),
                    ),
                    Kind::Histogram => {
                        return Err(format!(
                            "line {}: histogram family `{key}` sampled without a _bucket/_sum/_count suffix",
                            number + 1
                        ))
                    }
                };
                continue;
            }
            // A histogram component line.
            let (family, part) = match key
                .strip_suffix("_bucket")
                .map(|f| (f, HistPart::Bucket))
                .or_else(|| key.strip_suffix("_sum").map(|f| (f, HistPart::Sum)))
                .or_else(|| key.strip_suffix("_count").map(|f| (f, HistPart::Count)))
            {
                Some(split) => split,
                None => {
                    return Err(format!(
                        "line {}: sample `{key}` has no preceding # TYPE",
                        number + 1
                    ))
                }
            };
            if kinds.get(family) != Some(&Kind::Histogram) {
                return Err(format!(
                    "line {}: `{key}` does not belong to a declared histogram",
                    number + 1
                ));
            }
            let (le, labels): (Option<String>, Vec<(String, String)>) = match part {
                HistPart::Bucket => {
                    let mut le = None;
                    let rest: Vec<(String, String)> = labels
                        .into_iter()
                        .filter_map(|(k, v)| {
                            if k == "le" {
                                le = Some(v);
                                None
                            } else {
                                Some((k, v))
                            }
                        })
                        .collect();
                    match le {
                        Some(le) => (Some(le), rest),
                        None => {
                            return Err(format!(
                                "line {}: bucket line without an `le` label",
                                number + 1
                            ))
                        }
                    }
                }
                _ => (None, labels),
            };
            let partial = partials
                .entry(SeriesKey {
                    name: family.to_string(),
                    labels,
                })
                .or_default();
            match part {
                HistPart::Bucket => {
                    if let Some(le) = le {
                        partial.cumulative.push((le, value));
                    }
                }
                HistPart::Sum => partial.sum = Some(value),
                HistPart::Count => partial.count = Some(value),
            }
        }
        for (key, partial) in partials {
            let (buckets, total) = partial.finish(&key.name)?;
            let sum_us = partial.sum.unwrap_or(0);
            if let Some(count) = partial.count {
                if count != u128::from(total) {
                    return Err(format!(
                        "histogram `{}`: _count {} != cumulative bucket total {}",
                        key.name, count, total
                    ));
                }
            }
            snap.samples
                .insert(key, Value::Histogram { buckets, sum_us });
        }
        Ok(snap)
    }
}

#[derive(Clone, Copy)]
enum HistPart {
    Bucket,
    Sum,
    Count,
}

#[derive(Default)]
struct HistogramPartial {
    /// `(le label, cumulative count)` in document order.
    cumulative: Vec<(String, u128)>,
    sum: Option<u128>,
    count: Option<u128>,
}

impl HistogramPartial {
    /// Validates bucket boundaries against [`BUCKET_BOUNDS_US`] and
    /// de-cumulates into per-bucket counts; returns the overflow total.
    fn finish(&self, family: &str) -> Result<(Vec<u64>, u64), String> {
        if self.cumulative.len() != BUCKET_COUNT {
            return Err(format!(
                "histogram `{family}`: {} bucket lines, expected {}",
                self.cumulative.len(),
                BUCKET_COUNT
            ));
        }
        let mut buckets = Vec::with_capacity(BUCKET_COUNT);
        let mut previous: u128 = 0;
        for (index, (le, cumulative)) in self.cumulative.iter().enumerate() {
            let expected = match BUCKET_BOUNDS_US.get(index) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            if *le != expected {
                return Err(format!(
                    "histogram `{family}`: bucket {index} has le=\"{le}\", expected \"{expected}\""
                ));
            }
            if *cumulative < previous {
                return Err(format!(
                    "histogram `{family}`: cumulative counts decrease at le=\"{le}\""
                ));
            }
            let delta = cumulative - previous;
            let delta = u64::try_from(delta)
                .map_err(|_| format!("histogram `{family}`: bucket count overflows u64"))?;
            buckets.push(delta);
            previous = *cumulative;
        }
        let total =
            u64::try_from(previous).map_err(|_| format!("histogram `{family}`: total overflow"))?;
        Ok((buckets, total))
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label(value));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

type ParsedSeries = ((String, Vec<(String, String)>), String);

/// Splits `name{k="v",...} value` (labels optional) into its parts.
/// Returns `None` on any grammar violation.
fn split_sample_line(line: &str) -> Option<ParsedSeries> {
    let (series_text, value_text) = line.rsplit_once(' ')?;
    let value_text = value_text.to_string();
    let series_text = series_text.trim_end();
    if let Some((name, label_text)) = series_text.split_once('{') {
        let label_text = label_text.strip_suffix('}')?;
        if !valid_metric_name(name) {
            return None;
        }
        let mut labels = Vec::new();
        if !label_text.is_empty() {
            for pair in split_label_pairs(label_text)? {
                labels.push(pair);
            }
        }
        labels.sort();
        Some(((name.to_string(), labels), value_text))
    } else {
        if !valid_metric_name(series_text) {
            return None;
        }
        Some(((series_text.to_string(), Vec::new()), value_text))
    }
}

/// Splits `k="v",k2="v2"` respecting escapes inside quoted values.
fn split_label_pairs(text: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut rest = text;
    loop {
        let (key, after_key) = rest.split_once("=\"")?;
        if key.is_empty() {
            return None;
        }
        // Find the closing unescaped quote.
        let mut end = None;
        let mut escaped = false;
        for (offset, c) in after_key.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(offset);
                    break;
                }
                _ => {}
            }
        }
        let end = end?;
        let value = unescape_label(&after_key[..end]);
        pairs.push((key.to_string(), value));
        let tail = &after_key[end + 1..];
        if tail.is_empty() {
            return Some(pairs);
        }
        rest = tail.strip_prefix(',')?;
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && name.starts_with(|c: char| c.is_ascii_lowercase())
}

/// The smallest bucket upper bound at or above the `q`-quantile of a
/// non-cumulative bucket vector — the scrape-side percentile estimator
/// (an upper bound, conservative by one bucket). `None` for an empty
/// histogram; `u64::MAX` when the quantile falls in the overflow bucket.
pub fn quantile_upper_bound_us(buckets: &[u64], q: f64) -> Option<u64> {
    let total: u128 = buckets.iter().map(|&b| u128::from(b)).sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut rank = (q * total as f64).ceil() as u128;
    rank = rank.clamp(1, total);
    let mut cumulative: u128 = 0;
    for (index, &count) in buckets.iter().enumerate() {
        cumulative += u128::from(count);
        if cumulative >= rank {
            return Some(match BUCKET_BOUNDS_US.get(index) {
                Some(bound) => *bound,
                None => u64::MAX,
            });
        }
    }
    Some(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_over_f64() {
        assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1.0), 0); // le="1" includes 1.0
        assert_eq!(bucket_index(1.5), 1);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(2.1), 2);
        assert_eq!(bucket_index(1_000_000_000.0), BUCKET_BOUNDS_US.len() - 1);
        assert_eq!(bucket_index(1_000_000_001.0), BUCKET_BOUNDS_US.len());
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_BOUNDS_US.len());
        assert_eq!(bucket_index(f64::NAN), BUCKET_BOUNDS_US.len());
    }

    #[test]
    fn boundaries_are_strictly_increasing() {
        for window in BUCKET_BOUNDS_US.windows(2) {
            assert!(window[0] < window[1]);
        }
    }

    #[test]
    fn registry_handles_share_cells_and_snapshot() {
        let registry = Registry::new();
        let a = registry.counter_with("haste_service_requests_total", "opcode", "SUBMIT");
        let b = registry.counter_with("haste_service_requests_total", "opcode", "SUBMIT");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let hist = registry.histogram_with("haste_service_request_duration_us", "opcode", "SUBMIT");
        hist.observe(7.0);
        hist.observe_n(150.0, 4);
        assert_eq!(hist.count(), 5);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("haste_service_requests_total", &[("opcode", "SUBMIT")]),
            Some(&Value::Counter(3))
        );
        match snap.get("haste_service_request_duration_us", &[("opcode", "SUBMIT")]) {
            Some(Value::Histogram { buckets, sum_us }) => {
                assert_eq!(buckets.iter().sum::<u64>(), 5);
                assert_eq!(*sum_us, 7 + 150 * 4);
            }
            other => panic!("expected a histogram sample, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_registration_detaches_instead_of_panicking() {
        let registry = Registry::new();
        let _counter = registry.counter("haste_engine_admitted_total");
        let gauge = registry.gauge("haste_engine_admitted_total");
        gauge.set(99); // lands nowhere visible
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("haste_engine_admitted_total", &[]),
            Some(&Value::Counter(0))
        );
    }

    #[test]
    fn render_parse_roundtrips() {
        let registry = Registry::new();
        registry
            .counter_with("haste_service_requests_total", "opcode", "TICK")
            .add(11);
        registry.gauge("haste_engine_pending_tasks").set(4);
        let hist = registry.histogram_with("haste_service_request_duration_us", "opcode", "TICK");
        hist.observe(3.0);
        hist.observe(40.0);
        hist.observe(2e12); // overflow bucket
        let snap = registry.snapshot();
        let text = snap.render();
        let parsed = Snapshot::parse(&text).expect("own render must parse");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn merge_is_order_invariant_bit_for_bit() {
        let mut a = Snapshot::new();
        a.set_counter("haste_engine_admitted_total", &[], 5);
        a.set_gauge("haste_engine_clock_slots", &[], 9);
        a.set_histogram("haste_shard_request_duration_us", &[], vec![1, 2, 3], 77);
        let mut b = Snapshot::new();
        b.set_counter("haste_engine_admitted_total", &[], 6);
        b.set_gauge("haste_engine_clock_slots", &[], 12);
        b.set_histogram("haste_shard_request_duration_us", &[], vec![4, 0, 1], 33);
        let mut c = Snapshot::new();
        c.set_gauge("haste_engine_clock_slots", &[], 3);
        c.set_histogram("haste_shard_request_duration_us", &[], vec![0, 7], 1);

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right = c.clone();
        right.merge(b.clone());
        right.merge(a.clone());
        assert_eq!(left.render(), right.render());
        // clock is a max-merge gauge per the catalog
        assert_eq!(
            left.get("haste_engine_clock_slots", &[]),
            Some(&Value::Gauge(12))
        );
        assert_eq!(
            left.get("haste_engine_admitted_total", &[]),
            Some(&Value::Counter(11))
        );
    }

    #[test]
    fn rename_and_retain_rewrite_families() {
        let mut snap = Snapshot::new();
        snap.set_counter("haste_service_requests_total", &[("opcode", "SUBMIT")], 3);
        snap.set_gauge("haste_engine_clock_slots", &[], 7);
        snap.retain_prefix("haste_service_");
        assert!(snap.get("haste_engine_clock_slots", &[]).is_none());
        snap.rename_prefix("haste_service_", "haste_shard_");
        assert_eq!(
            snap.get("haste_shard_requests_total", &[("opcode", "SUBMIT")]),
            Some(&Value::Counter(3))
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "garbage line\n",
            "# NOPE x y\n",
            "# TYPE haste_x_total counter\nhaste_x_total notanumber\n",
            "haste_orphan_total 3\n",                      // no TYPE
            "# TYPE haste_h_us histogram\nhaste_h_us 3\n", // bare histogram sample
            "# TYPE haste_h_us histogram\nhaste_h_us_bucket{le=\"7\"} 3\n", // bad bound
        ] {
            assert!(Snapshot::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn label_escaping_roundtrips() {
        let mut snap = Snapshot::new();
        snap.set_counter(
            "haste_service_errors_total",
            &[("err_code", "bad\"quote\\slash")],
            2,
        );
        let text = snap.render();
        let parsed = Snapshot::parse(&text).expect("escaped labels parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn quantile_upper_bound_walks_buckets() {
        let mut buckets = vec![0u64; BUCKET_COUNT];
        buckets[0] = 50; // le=1
        buckets[3] = 49; // le=10
        buckets[BUCKET_COUNT - 1] = 1; // overflow
        assert_eq!(quantile_upper_bound_us(&buckets, 0.5), Some(1));
        assert_eq!(quantile_upper_bound_us(&buckets, 0.99), Some(10));
        assert_eq!(quantile_upper_bound_us(&buckets, 1.0), Some(u64::MAX));
        assert_eq!(quantile_upper_bound_us(&[0; BUCKET_COUNT], 0.5), None);
    }
}
