//! Property tests for the histogram bucket map and snapshot merge:
//! bucket assignment is total and deterministic over all `f64`, and
//! merge order never changes the rendered exposition bit-for-bit.

use haste_metrics::{
    bucket_index, quantile_upper_bound_us, Snapshot, BUCKET_BOUNDS_US, BUCKET_COUNT,
};
use proptest::prelude::*;

/// Builds a small snapshot from raw draws: one counter, one max-merge
/// gauge, one sum-merge gauge, and one histogram over the shared bounds.
fn snapshot_from(seedbits: u64, counts: &[u64]) -> Snapshot {
    let mut snap = Snapshot::new();
    snap.set_counter(
        "haste_engine_admitted_total",
        &[],
        u128::from(seedbits & 0xffff),
    );
    snap.set_gauge("haste_engine_clock_slots", &[], u128::from(seedbits >> 48));
    snap.set_gauge(
        "haste_engine_pending_tasks",
        &[],
        u128::from((seedbits >> 16) & 0xff),
    );
    let mut buckets = vec![0u64; BUCKET_COUNT];
    for (index, &count) in counts.iter().enumerate() {
        buckets[index % BUCKET_COUNT] = buckets[index % BUCKET_COUNT].wrapping_add(count & 0xffff);
    }
    let sum: u64 = buckets.iter().fold(0, |acc, &b| acc.wrapping_add(b));
    snap.set_histogram(
        "haste_service_request_duration_us",
        &[("opcode", "SUBMIT")],
        buckets,
        u128::from(sum),
    );
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every `f64` bit pattern — including NaN, infinities, subnormals,
    /// and negatives — maps to exactly one in-range bucket, and the
    /// mapping respects the bucket boundaries.
    #[test]
    fn every_f64_maps_to_exactly_one_bucket(bits in 0u64..=u64::MAX) {
        let value = f64::from_bits(bits);
        let index = bucket_index(value);
        prop_assert!(index < BUCKET_COUNT);
        if value.is_nan() {
            prop_assert_eq!(index, BUCKET_BOUNDS_US.len());
        } else {
            if index < BUCKET_BOUNDS_US.len() {
                prop_assert!(value <= BUCKET_BOUNDS_US[index] as f64);
            } else {
                prop_assert!(value > *BUCKET_BOUNDS_US.last().unwrap() as f64);
            }
            if index > 0 {
                prop_assert!(value > BUCKET_BOUNDS_US[index - 1] as f64);
            }
        }
    }

    /// Merging snapshots is associative and commutative: any merge order
    /// renders to byte-identical exposition text.
    #[test]
    fn merge_order_never_changes_rendered_output(
        seed_a in 0u64..=u64::MAX,
        seed_b in 0u64..=u64::MAX,
        seed_c in 0u64..=u64::MAX,
        counts_a in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        counts_b in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        counts_c in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let a = snapshot_from(seed_a, &counts_a);
        let b = snapshot_from(seed_b, &counts_b);
        let c = snapshot_from(seed_c, &counts_c);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c.clone());
        let mut right = a.clone();
        right.merge(bc);
        // c ⊕ b ⊕ a
        let mut reversed = c;
        reversed.merge(b);
        reversed.merge(a);

        let rendered = left.render();
        prop_assert_eq!(&rendered, &right.render());
        prop_assert_eq!(&rendered, &reversed.render());
        // And the rendered text survives a parse round-trip.
        let parsed = Snapshot::parse(&rendered);
        prop_assert!(parsed.is_ok());
        prop_assert_eq!(parsed.unwrap_or_default().render(), rendered);
    }

    /// The quantile estimator always answers with a bucket upper bound
    /// (or the overflow sentinel) for non-empty histograms.
    #[test]
    fn quantile_lands_on_a_bucket_bound(
        counts in proptest::collection::vec(0u64..=1_000_000, BUCKET_COUNT),
        q in 0.0f64..=1.0,
    ) {
        match quantile_upper_bound_us(&counts, q) {
            None => prop_assert!(counts.iter().all(|&c| c == 0)),
            Some(bound) => {
                prop_assert!(bound == u64::MAX || BUCKET_BOUNDS_US.contains(&bound));
            }
        }
    }
}
