//! Extension experiment: charger-failure robustness of the distributed
//! online scheduler (not a paper figure; see EXPERIMENTS.md).

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::fig_failures(&config.ctx);
    haste_bench::emit(&table, &config);
}
