//! Regenerates Fig. 18 of the paper. See `haste_bench::parse_args` for flags.

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::fig18(&config.ctx);
    haste_bench::emit(&table, &config);
}
