//! Drives the scheduling daemon with concurrent Poisson task arrivals and
//! prints throughput and submit-to-ack latency percentiles, plus the
//! daemon's solver metrics. Self-hosts a daemon by default; point it at a
//! running one with `--addr`.
//!
//! ```text
//! cargo run --release -p haste-bench --bin loadgen -- \
//!     [--addr host:port] [--connections 8] [--submissions 10000] \
//!     [--chargers 8] [--field 200] [--slots 64] [--seed 1] \
//!     [--max-pending 4096] [--cells CXxCY] [--no-verify] \
//!     [--out-of-process] [--shardd PATH] [--deadline-ms N] \
//!     [--fault-plan FILE] [--binary] [--batch N] [--json FILE]
//! ```
//!
//! `--binary` negotiates protocol v3 binary framing on the worker
//! connections (the run fails if the endpoint only speaks text);
//! `--batch N` submits N tasks per `OP_BATCH` frame (one vectored ack).
//! `--json FILE` additionally writes the report as a JSON document — the
//! shape committed as `BENCH_*.json` at the repo root, so before/after
//! perf comparisons survive re-anchors.
//!
//! With `--cells` the harness self-hosts the sharded router instead of a
//! single daemon and the replay check becomes the sum of per-shard
//! replays merged in arrival order. `--out-of-process` runs each shard as
//! a supervised `haste-shardd` child process; `--fault-plan` additionally
//! injects a deterministic fault schedule (chaos mode): the harness runs
//! a no-fault reference session first and fails unless every cell the
//! plan did not target finishes bit-identical to it, every targeted
//! shard recovers, and at least one restart was actually exercised.
//!
//! Exits non-zero on any transport/protocol error, on rejected
//! submissions, or when the streamed session's utility does not match the
//! batch replay of its own submission trace bit for bit.

use haste::service::loadgen::{self, LoadgenConfig};
use haste::service::FaultPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadgenConfig::default();
    let mut strict = true;
    let mut json_path: Option<String> = None;

    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                config.addr = Some(value(&args, i, "--addr"));
                i += 1;
            }
            "--connections" => {
                config.connections = parse(&value(&args, i, "--connections"));
                i += 1;
            }
            "--submissions" => {
                config.submissions = parse(&value(&args, i, "--submissions"));
                i += 1;
            }
            "--chargers" => {
                config.chargers = parse(&value(&args, i, "--chargers"));
                i += 1;
            }
            "--field" => {
                config.field = parse(&value(&args, i, "--field"));
                i += 1;
            }
            "--slots" => {
                config.slots = parse(&value(&args, i, "--slots"));
                i += 1;
            }
            "--seed" => {
                config.seed = parse(&value(&args, i, "--seed"));
                i += 1;
            }
            "--max-pending" => {
                config.max_pending = parse(&value(&args, i, "--max-pending"));
                i += 1;
            }
            "--cells" => {
                config.cells = Some(parse_cells(&value(&args, i, "--cells")));
                i += 1;
            }
            "--out-of-process" => config.out_of_process = true,
            "--shardd" => {
                config.shardd = Some(std::path::PathBuf::from(value(&args, i, "--shardd")));
                i += 1;
            }
            "--deadline-ms" => {
                config.deadline = Some(std::time::Duration::from_millis(parse(&value(
                    &args,
                    i,
                    "--deadline-ms",
                ))));
                i += 1;
            }
            "--fault-plan" => {
                let path = value(&args, i, "--fault-plan");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("--fault-plan: cannot read `{path}`: {e}");
                    std::process::exit(2);
                });
                config.fault_plan = Some(FaultPlan::parse(&text).unwrap_or_else(|reason| {
                    eprintln!("--fault-plan: {reason}");
                    std::process::exit(2);
                }));
                i += 1;
            }
            "--binary" => config.binary = true,
            "--batch" => {
                config.batch = parse(&value(&args, i, "--batch"));
                i += 1;
            }
            "--json" => {
                json_path = Some(value(&args, i, "--json"));
                i += 1;
            }
            "--no-verify" => config.verify_replay = false,
            "--lenient" => strict = false,
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let report = loadgen::run(&config).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });
    println!("{report}");
    if let Some(path) = &json_path {
        let doc = report_json(&config, &report);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("--json: cannot write `{path}`: {e}");
            std::process::exit(1);
        }
    }

    if strict {
        // Under fault injection, submissions bounced by a down shard are
        // expected degraded-mode behaviour and accounted separately.
        let accounted = report.accepted + report.unavailable;
        if accounted != report.submitted {
            eprintln!(
                "FAIL: {} of {} submissions were not accepted",
                report.submitted - accounted,
                report.submitted
            );
            std::process::exit(1);
        }
        if report.replay_matches == Some(false) {
            eprintln!(
                "FAIL: streamed utility {} != replay utility {}",
                report.utility,
                report.replay_utility.unwrap_or(f64::NAN)
            );
            std::process::exit(1);
        }
        if let Some(chaos) = &report.chaos {
            if !chaos.surviving_match {
                eprintln!(
                    "FAIL: a cell outside the fault plan (targets {:?}) diverged from the \
                     no-fault reference run",
                    chaos.fault_cells
                );
                std::process::exit(1);
            }
            if !chaos.recovered {
                eprintln!(
                    "FAIL: a shard was still restarting at the end of the run (targets {:?})",
                    chaos.fault_cells
                );
                std::process::exit(1);
            }
            let expects_restarts = config
                .fault_plan
                .as_ref()
                .is_some_and(FaultPlan::expects_restarts);
            if expects_restarts && chaos.restarts == 0 {
                eprintln!("FAIL: fault plan injected but no shard restart was observed");
                std::process::exit(1);
            }
        }
    }
}

/// Renders the report as a flat JSON object — hand-rolled because the
/// workspace builds fully offline (no serde). Floats use Rust's default
/// shortest-roundtrip `Display`, so the document is bit-faithful to the
/// run it records.
fn report_json(config: &LoadgenConfig, report: &loadgen::LoadgenReport) -> String {
    let wire = if config.binary { "binary" } else { "text" };
    let cells = match config.cells {
        Some((cx, cy)) => format!("\"{cx}x{cy}\""),
        None => "null".to_string(),
    };
    let replay_utility = report
        .replay_utility
        .map_or("null".to_string(), |u| u.to_string());
    let replay_matches = report
        .replay_matches
        .map_or("null".to_string(), |m| m.to_string());
    let shards = report.shards.map_or("null".to_string(), |n| n.to_string());
    let fields: Vec<String> = vec![
        format!("\"wire\": \"{wire}\""),
        format!("\"batch\": {}", config.batch.max(1)),
        format!("\"connections\": {}", config.connections),
        format!("\"submissions\": {}", config.submissions),
        format!("\"chargers\": {}", config.chargers),
        format!("\"field\": {}", config.field),
        format!("\"slots\": {}", config.slots),
        format!("\"seed\": {}", config.seed),
        format!("\"cells\": {cells}"),
        format!("\"out_of_process\": {}", config.out_of_process),
        format!("\"submitted\": {}", report.submitted),
        format!("\"accepted\": {}", report.accepted),
        format!("\"rejected\": {}", report.rejected),
        format!("\"unavailable\": {}", report.unavailable),
        format!("\"p50_us\": {}", report.p50_us),
        format!("\"p99_us\": {}", report.p99_us),
        format!("\"max_us\": {}", report.max_us),
        format!("\"elapsed_s\": {}", report.elapsed_s),
        format!("\"throughput\": {}", report.throughput),
        format!("\"submit_elapsed_s\": {}", report.submit_elapsed_s),
        format!("\"submit_throughput\": {}", report.submit_throughput),
        format!("\"utility\": {}", report.utility),
        format!("\"relaxed\": {}", report.relaxed),
        format!("\"replay_utility\": {replay_utility}"),
        format!("\"replay_matches\": {replay_matches}"),
        format!("\"shards\": {shards}"),
    ];
    format!("{{\n  {}\n}}\n", fields.join(",\n  "))
}

fn parse_cells(s: &str) -> (usize, usize) {
    let cells = s
        .split_once('x')
        .map(|(cx, cy)| (parse::<usize>(cx), parse::<usize>(cy)));
    match cells {
        Some((cx, cy)) if cx >= 1 && cy >= 1 => (cx, cy),
        _ => {
            eprintln!("bad --cells value `{s}`; expected CXxCY, e.g. 2x1");
            std::process::exit(2);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value `{s}`");
        std::process::exit(2);
    })
}
