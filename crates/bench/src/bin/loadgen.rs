//! Drives the scheduling daemon with concurrent Poisson task arrivals and
//! prints throughput and submit-to-ack latency percentiles, plus the
//! daemon's solver metrics. Self-hosts a daemon by default; point it at a
//! running one with `--addr`.
//!
//! ```text
//! cargo run --release -p haste-bench --bin loadgen -- \
//!     [--addr host:port] [--connections 8] [--submissions 10000] \
//!     [--chargers 8] [--field 200] [--slots 64] [--seed 1] \
//!     [--max-pending 4096] [--cells CXxCY] [--no-verify] \
//!     [--out-of-process] [--shardd PATH] [--deadline-ms N] \
//!     [--fault-plan FILE] [--binary] [--batch N] [--json FILE] \
//!     [--profile uniform|diurnal[:PERIOD]|hotspot[:CELL:FACTOR]] \
//!     [--reshard-split SLOT:CELL] [--open-loop RATE] \
//!     [--metrics-addr HOST:PORT] [--check-export] \
//!     [--wal-dir DIR] [--routerd PATH]
//! ```
//!
//! `--binary` negotiates protocol v3 binary framing on the worker
//! connections (the run fails if the endpoint only speaks text);
//! `--batch N` submits N tasks per `OP_BATCH` frame (one vectored ack).
//! `--json FILE` additionally writes the report as a JSON document — the
//! shape committed as `BENCH_*.json` at the repo root, so before/after
//! perf comparisons survive re-anchors.
//!
//! `--profile diurnal[:PERIOD]` draws arrival slots from the seeded
//! double-peaked diurnal curve (PERIOD slots per synthetic day, default
//! the whole run) and reports peak-band vs trough-band rejection rates.
//! `--profile hotspot[:CELL:FACTOR]` keeps slots uniform but lands
//! FACTOR× the arrivals on partition cell CELL (default `0:8`; needs
//! `--cells`). `--reshard-split SLOT:CELL` scripts a live
//! `RESHARD SPLIT CELL` right after the SLOT-th tick, mid-run.
//! `--open-loop RATE` paces raw submissions at RATE/s without waiting
//! for acks; latency percentiles then come from the server-side
//! `EXPORT?` histogram, rejections are the saturation signal rather
//! than a failure, and the flag is refused without `--json` (the
//! machine-readable report is the whole point of an open-loop run).
//! `--metrics-addr` gives the self-hosted router a plain-HTTP scrape
//! listener; `--check-export` fetches the exposition after the run
//! (over that listener when set, else `EXPORT?`), checks it parses, and
//! fails unless the `SUBMIT` latency-histogram count equals the
//! session's accepted + rejected + unavailable submissions.
//!
//! With `--cells` the harness self-hosts the sharded router instead of a
//! single daemon and the replay check becomes the sum of per-shard
//! replays merged in arrival order. `--out-of-process` runs each shard as
//! a supervised `haste-shardd` child process; `--fault-plan` additionally
//! injects a deterministic fault schedule (chaos mode): the harness runs
//! a no-fault reference session first and fails unless every cell the
//! plan did not target finishes bit-identical to it, every targeted
//! shard recovers, and at least one restart was actually exercised.
//!
//! `--wal-dir DIR` makes the self-hosted router durable (stale WAL
//! artifacts in DIR are removed at session start). A fault plan with
//! `kill-router @slot` directives requires it: the harness then runs the
//! router as a `routerd` subprocess (`--routerd` overrides the binary
//! path), SIGKILLs it at each listed post-tick barrier, respawns it to
//! recover from the WAL, and fails unless the recovered run finishes
//! bit-identical to the undisturbed reference — every cell and the
//! total.
//!
//! Exits non-zero on any transport/protocol error, on rejected
//! submissions, or when the streamed session's utility does not match the
//! batch replay of its own submission trace bit for bit.

use haste::service::loadgen::{self, ArrivalProfile, LoadgenConfig};
use haste::service::FaultPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadgenConfig::default();
    let mut strict = true;
    let mut json_path: Option<String> = None;
    // Resolved after the loop: a bare `diurnal` defaults its period to
    // the final --slots value regardless of flag order.
    let mut profile_arg: Option<String> = None;

    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                config.addr = Some(value(&args, i, "--addr"));
                i += 1;
            }
            "--connections" => {
                config.connections = parse(&value(&args, i, "--connections"));
                i += 1;
            }
            "--submissions" => {
                config.submissions = parse(&value(&args, i, "--submissions"));
                i += 1;
            }
            "--chargers" => {
                config.chargers = parse(&value(&args, i, "--chargers"));
                i += 1;
            }
            "--field" => {
                config.field = parse(&value(&args, i, "--field"));
                i += 1;
            }
            "--slots" => {
                config.slots = parse(&value(&args, i, "--slots"));
                i += 1;
            }
            "--seed" => {
                config.seed = parse(&value(&args, i, "--seed"));
                i += 1;
            }
            "--max-pending" => {
                config.max_pending = parse(&value(&args, i, "--max-pending"));
                i += 1;
            }
            "--cells" => {
                config.cells = Some(parse_cells(&value(&args, i, "--cells")));
                i += 1;
            }
            "--out-of-process" => config.out_of_process = true,
            "--shardd" => {
                config.shardd = Some(std::path::PathBuf::from(value(&args, i, "--shardd")));
                i += 1;
            }
            "--deadline-ms" => {
                config.deadline = Some(std::time::Duration::from_millis(parse(&value(
                    &args,
                    i,
                    "--deadline-ms",
                ))));
                i += 1;
            }
            "--fault-plan" => {
                let path = value(&args, i, "--fault-plan");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("--fault-plan: cannot read `{path}`: {e}");
                    std::process::exit(2);
                });
                config.fault_plan = Some(FaultPlan::parse(&text).unwrap_or_else(|reason| {
                    eprintln!("--fault-plan: {reason}");
                    std::process::exit(2);
                }));
                i += 1;
            }
            "--binary" => config.binary = true,
            "--batch" => {
                config.batch = parse(&value(&args, i, "--batch"));
                i += 1;
            }
            "--profile" => {
                profile_arg = Some(value(&args, i, "--profile"));
                i += 1;
            }
            "--reshard-split" => {
                let spec = value(&args, i, "--reshard-split");
                let parts = spec
                    .split_once(':')
                    .map(|(slot, cell)| (parse::<usize>(slot), parse::<usize>(cell)));
                config.reshard_split = match parts {
                    Some(pair) => Some(pair),
                    None => {
                        eprintln!("bad --reshard-split value `{spec}`; expected SLOT:CELL");
                        std::process::exit(2);
                    }
                };
                i += 1;
            }
            "--open-loop" => {
                config.open_loop = Some(parse(&value(&args, i, "--open-loop")));
                i += 1;
            }
            "--metrics-addr" => {
                config.metrics_addr = Some(value(&args, i, "--metrics-addr"));
                i += 1;
            }
            "--check-export" => config.check_export = true,
            "--wal-dir" => {
                config.wal_dir = Some(std::path::PathBuf::from(value(&args, i, "--wal-dir")));
                i += 1;
            }
            "--routerd" => {
                config.routerd = Some(std::path::PathBuf::from(value(&args, i, "--routerd")));
                i += 1;
            }
            "--json" => {
                json_path = Some(value(&args, i, "--json"));
                i += 1;
            }
            "--no-verify" => config.verify_replay = false,
            "--lenient" => strict = false,
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(text) = &profile_arg {
        config.profile = parse_profile(text, config.slots);
    }
    if config.open_loop.is_some() && json_path.is_none() {
        eprintln!(
            "--open-loop needs --json: the machine-readable report is what an open-loop \
             run produces"
        );
        std::process::exit(2);
    }

    let report = loadgen::run(&config).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });
    println!("{report}");
    if let Some(path) = &json_path {
        let doc = report_json(&config, &report);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("--json: cannot write `{path}`: {e}");
            std::process::exit(1);
        }
    }

    if strict {
        // Under fault injection, submissions bounced by a down shard are
        // expected degraded-mode behaviour and accounted separately. An
        // open-loop run saturates admission on purpose, so rejections
        // are its measurement, not a failure.
        let accounted = report.accepted + report.unavailable;
        if config.open_loop.is_none() && accounted != report.submitted {
            eprintln!(
                "FAIL: {} of {} submissions were not accepted",
                report.submitted - accounted,
                report.submitted
            );
            std::process::exit(1);
        }
        if report.replay_matches == Some(false) {
            eprintln!(
                "FAIL: streamed utility {} != replay utility {}",
                report.utility,
                report.replay_utility.unwrap_or(f64::NAN)
            );
            std::process::exit(1);
        }
        if let Some(chaos) = &report.chaos {
            if !chaos.surviving_match {
                eprintln!(
                    "FAIL: a cell outside the fault plan (targets {:?}) diverged from the \
                     no-fault reference run",
                    chaos.fault_cells
                );
                std::process::exit(1);
            }
            if !chaos.recovered {
                eprintln!(
                    "FAIL: a shard was still restarting at the end of the run (targets {:?})",
                    chaos.fault_cells
                );
                std::process::exit(1);
            }
            let expects_restarts = config
                .fault_plan
                .as_ref()
                .is_some_and(FaultPlan::expects_restarts);
            if expects_restarts && chaos.restarts == 0 {
                eprintln!("FAIL: fault plan injected but no shard restart was observed");
                std::process::exit(1);
            }
        }
    }
}

/// Renders the report as a flat JSON object — hand-rolled because the
/// workspace builds fully offline (no serde). Floats use Rust's default
/// shortest-roundtrip `Display`, so the document is bit-faithful to the
/// run it records.
fn report_json(config: &LoadgenConfig, report: &loadgen::LoadgenReport) -> String {
    let wire = if config.binary { "binary" } else { "text" };
    let cells = match config.cells {
        Some((cx, cy)) => format!("\"{cx}x{cy}\""),
        None => "null".to_string(),
    };
    let replay_utility = report
        .replay_utility
        .map_or("null".to_string(), |u| u.to_string());
    let replay_matches = report
        .replay_matches
        .map_or("null".to_string(), |m| m.to_string());
    let shards = report.shards.map_or("null".to_string(), |n| n.to_string());
    let profile = match config.profile {
        ArrivalProfile::Uniform => "\"uniform\"".to_string(),
        ArrivalProfile::Diurnal { period } => format!("\"diurnal:{period}\""),
        ArrivalProfile::Hotspot { cell, factor } => format!("\"hotspot:{cell}:{factor}\""),
    };
    let open_loop = config
        .open_loop
        .map_or("null".to_string(), |rate| rate.to_string());
    let peak = report
        .peak_overload_rate
        .map_or("null".to_string(), |r| r.to_string());
    let trough = report
        .trough_overload_rate
        .map_or("null".to_string(), |r| r.to_string());
    let export_consistent = report
        .export_consistent
        .map_or("null".to_string(), |ok| ok.to_string());
    let latency_source = if report.server_side_latency {
        "\"server\""
    } else {
        "\"client\""
    };
    let fields: Vec<String> = vec![
        format!("\"wire\": \"{wire}\""),
        format!("\"profile\": {profile}"),
        format!("\"open_loop\": {open_loop}"),
        format!("\"latency_source\": {latency_source}"),
        format!("\"batch\": {}", config.batch.max(1)),
        format!("\"connections\": {}", config.connections),
        format!("\"submissions\": {}", config.submissions),
        format!("\"chargers\": {}", config.chargers),
        format!("\"field\": {}", config.field),
        format!("\"slots\": {}", config.slots),
        format!("\"seed\": {}", config.seed),
        format!("\"cells\": {cells}"),
        format!("\"out_of_process\": {}", config.out_of_process),
        format!(
            "\"reshard_split\": {}",
            config
                .reshard_split
                .map_or("null".to_string(), |(slot, cell)| format!(
                    "\"{slot}:{cell}\""
                ))
        ),
        format!("\"submitted\": {}", report.submitted),
        format!("\"accepted\": {}", report.accepted),
        format!("\"rejected\": {}", report.rejected),
        format!("\"unavailable\": {}", report.unavailable),
        format!("\"p50_us\": {}", report.p50_us),
        format!("\"p99_us\": {}", report.p99_us),
        format!("\"max_us\": {}", report.max_us),
        format!("\"elapsed_s\": {}", report.elapsed_s),
        format!("\"throughput\": {}", report.throughput),
        format!("\"submit_elapsed_s\": {}", report.submit_elapsed_s),
        format!("\"submit_throughput\": {}", report.submit_throughput),
        format!("\"utility\": {}", report.utility),
        format!("\"relaxed\": {}", report.relaxed),
        format!("\"replay_utility\": {replay_utility}"),
        format!("\"replay_matches\": {replay_matches}"),
        format!("\"shards\": {shards}"),
        format!("\"peak_overload_rate\": {peak}"),
        format!("\"trough_overload_rate\": {trough}"),
        format!("\"export_consistent\": {export_consistent}"),
    ];
    format!("{{\n  {}\n}}\n", fields.join(",\n  "))
}

/// Parses `--profile uniform` / `--profile diurnal[:PERIOD]` /
/// `--profile hotspot[:CELL:FACTOR]`; a bare `diurnal` spans the whole
/// run (`period = slots`) and a bare `hotspot` puts 8× weight on cell 0.
fn parse_profile(s: &str, slots: usize) -> ArrivalProfile {
    match s {
        "uniform" => ArrivalProfile::Uniform,
        "diurnal" => ArrivalProfile::Diurnal { period: slots },
        "hotspot" => ArrivalProfile::Hotspot { cell: 0, factor: 8 },
        _ => {
            if let Some(period) = s.strip_prefix("diurnal:").map(parse::<usize>) {
                if period >= 1 {
                    return ArrivalProfile::Diurnal { period };
                }
            }
            if let Some(rest) = s.strip_prefix("hotspot:") {
                if let Some((cell, factor)) = rest.split_once(':') {
                    return ArrivalProfile::Hotspot {
                        cell: parse(cell),
                        factor: parse(factor),
                    };
                }
            }
            eprintln!(
                "bad --profile value `{s}`; expected uniform, diurnal[:PERIOD] or \
                 hotspot[:CELL:FACTOR]"
            );
            std::process::exit(2);
        }
    }
}

fn parse_cells(s: &str) -> (usize, usize) {
    let cells = s
        .split_once('x')
        .map(|(cx, cy)| (parse::<usize>(cx), parse::<usize>(cy)));
    match cells {
        Some((cx, cy)) if cx >= 1 && cy >= 1 => (cx, cy),
        _ => {
            eprintln!("bad --cells value `{s}`; expected CXxCY, e.g. 2x1");
            std::process::exit(2);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value `{s}`");
        std::process::exit(2);
    })
}
