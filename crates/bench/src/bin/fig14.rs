//! Regenerates Fig. 14 of the paper. See `haste_bench::parse_args` for flags.

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::fig14(&config.ctx);
    haste_bench::emit(&table, &config);
}
