//! Regenerates Figs. 21-22: per-task utilities on testbed topology 1
//! (8 transmitters / 8 nodes), centralized offline and distributed online.

fn main() {
    let config = haste_bench::parse_args();
    haste_bench::emit(&haste::testbed::fig21(), &config);
    haste_bench::emit(&haste::testbed::fig22(), &config);
}
