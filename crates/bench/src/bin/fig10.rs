//! Regenerates Fig. 10 of the paper. See `haste_bench::parse_args` for flags.

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::fig10(&config.ctx);
    haste_bench::emit(&table, &config);
}
