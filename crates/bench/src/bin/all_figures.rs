//! Regenerates every figure of the paper in one run. Use `--quick` for a
//! smoke test or `--paper` for the 100-topology fidelity of the paper.

use haste::sim::experiments as exp;

fn main() {
    let config = haste_bench::parse_args();
    let ctx = &config.ctx;
    println!(
        "regenerating all figures with {} topologies per point on {} threads\n",
        ctx.topologies, ctx.threads
    );
    type FigureThunk<'a> = Box<dyn Fn() -> haste::sim::FigureTable + 'a>;
    let figs: Vec<(&str, FigureThunk)> = vec![
        ("fig04", Box::new(|| exp::fig04(ctx))),
        ("fig05", Box::new(|| exp::fig05(ctx))),
        ("fig06", Box::new(|| exp::fig06(ctx))),
        ("fig07", Box::new(|| exp::fig07(ctx))),
        ("fig08", Box::new(|| exp::fig08(ctx))),
        ("fig09", Box::new(|| exp::fig09(ctx))),
        ("fig10", Box::new(|| exp::fig10(ctx))),
        ("fig11", Box::new(|| exp::fig11(ctx))),
        ("fig12", Box::new(|| exp::fig12(ctx))),
        ("fig13", Box::new(|| exp::fig13(ctx))),
        ("fig14", Box::new(|| exp::fig14(ctx))),
        ("fig15", Box::new(|| exp::fig15(ctx))),
        ("fig16", Box::new(|| exp::fig16(ctx))),
        ("fig17", Box::new(|| exp::fig17(ctx))),
        ("fig18", Box::new(|| exp::fig18(ctx))),
        ("headline", Box::new(|| exp::headline(ctx))),
        ("fig21+22", Box::new(haste::testbed::fig21)),
        ("fig22", Box::new(haste::testbed::fig22)),
        ("fig24", Box::new(haste::testbed::fig24)),
        ("fig25", Box::new(haste::testbed::fig25)),
    ];
    for (name, run) in figs {
        let start = std::time::Instant::now();
        let table = run();
        haste_bench::emit(&table, &config);
        eprintln!("[{name} done in {:.1?}]\n", start.elapsed());
    }
}
