//! Regenerates Fig. 13 of the paper. See `haste_bench::parse_args` for flags.

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::fig13(&config.ctx);
    haste_bench::emit(&table, &config);
}
