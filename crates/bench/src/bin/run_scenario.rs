//! Runs the full algorithm roster on a user-provided scenario file in the
//! `haste_model::io` text format and prints a comparison table; optionally
//! renders per-slot SVG snapshots of the offline HASTE schedule.
//!
//! ```text
//! cargo run -p haste-bench --bin run_scenario -- path/to/scenario.txt [--svg out_dir]
//! ```

use haste::core::BaselineKind;
use haste::model::{io, CoverageMap};
use haste::sim::Algo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let svg_dir = args
        .iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1).cloned());
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != svg_dir.as_deref())
        .cloned()
        .unwrap_or_else(|| {
            eprintln!("usage: run_scenario <scenario-file> [--svg out_dir]");
            std::process::exit(2);
        });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let scenario = io::read_scenario(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let coverage = CoverageMap::build(&scenario);
    println!(
        "{path}: {} chargers, {} tasks, {} slots, rho={:.3}, tau={}",
        scenario.num_chargers(),
        scenario.num_tasks(),
        scenario.grid.num_slots,
        scenario.rho,
        scenario.tau
    );
    let roster = [
        Algo::OfflineHaste { colors: 1 },
        Algo::OfflineHaste { colors: 4 },
        Algo::OnlineHaste { colors: 1 },
        Algo::OnlineHaste { colors: 4 },
        Algo::OfflineBaseline(BaselineKind::GreedyUtility),
        Algo::OfflineBaseline(BaselineKind::GreedyCover),
        Algo::OnlineBaseline(BaselineKind::GreedyUtility),
        Algo::OnlineBaseline(BaselineKind::GreedyCover),
    ];
    let labels = [
        "HASTE offline (C=1)",
        "HASTE offline (C=4)",
        "HASTE online  (C=1)",
        "HASTE online  (C=4)",
        "GreedyUtility offline",
        "GreedyCover offline",
        "GreedyUtility online",
        "GreedyCover online",
    ];
    for (algo, label) in roster.iter().zip(labels) {
        match algo.run(&scenario, &coverage, 0) {
            Some(v) => println!("  {label:<24} utility {v:.4}"),
            None => println!("  {label:<24} (skipped)"),
        }
    }
    // The exact optimum, when tractable.
    match (Algo::Exact { budget: 1 << 24 }).run(&scenario, &coverage, 0) {
        Some(opt) => println!("  {:<24} utility {opt:.4} (HASTE-R upper bound)", "Optimal"),
        None => println!("  {:<24} instance too large to enumerate", "Optimal"),
    }

    if let Some(dir) = svg_dir {
        let result = haste::core::solve_offline(
            &scenario,
            &coverage,
            &haste::core::OfflineConfig::default(),
        );
        std::fs::create_dir_all(&dir).expect("create svg dir");
        let opts = haste::sim::render::RenderOptions::default();
        for slot in 0..scenario.grid.num_slots {
            let svg = haste::sim::render::render_svg(
                &scenario,
                Some(&result.schedule),
                slot,
                Some(&result.report),
                &opts,
            );
            let file = format!("{dir}/slot{slot:04}.svg");
            std::fs::write(&file, svg).expect("write svg");
        }
        println!("wrote {} SVG frames to {dir}/", scenario.grid.num_slots);
    }
}
