//! Ablation study over the design choices called out in DESIGN.md:
//! switch-aware tie-breaking, dominant-set scope, and the concave utility
//! extension. Prints utility / switch-count / ground-set comparisons
//! averaged over seeded topologies.

use haste::core::{solve_offline, DominantScope, HasteRInstance, OfflineConfig};
use haste::model::{CoverageMap, UtilityModel};
use haste::sim::ScenarioSpec;

fn main() {
    let config = haste_bench::parse_args();
    let ctx = &config.ctx;
    let spec = ScenarioSpec {
        num_chargers: 20,
        num_tasks: 80,
        release_horizon: 30,
        duration_range: (5, 30),
        ..ScenarioSpec::paper_default()
    };
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();

    // 1. Switch-aware tie-breaking (C = 1 path).
    let mut on = (0.0, 0usize);
    let mut off = (0.0, 0usize);
    for &seed in &seeds {
        let s = spec.generate(seed);
        let cov = CoverageMap::build(&s);
        let aware = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                switch_aware: true,
                ..OfflineConfig::greedy()
            },
        );
        let naive = solve_offline(
            &s,
            &cov,
            &OfflineConfig {
                switch_aware: false,
                ..OfflineConfig::greedy()
            },
        );
        on.0 += aware.report.total_utility;
        on.1 += aware.report.total_switches();
        off.0 += naive.report.total_utility;
        off.1 += naive.report.total_switches();
    }
    let n = seeds.len() as f64;
    println!("# ablation 1: switch-aware tie-breaking (offline, C=1)");
    println!(
        "  aware : utility {:.4}, switches {:.1}",
        on.0 / n,
        on.1 as f64 / n
    );
    println!(
        "  naive : utility {:.4}, switches {:.1}",
        off.0 / n,
        off.1 as f64 / n
    );

    // 2. Dominant-set scope: per-slot vs the paper's global formulation.
    let mut per_slot = (0.0, 0usize, std::time::Duration::ZERO);
    let mut global = (0.0, 0usize, std::time::Duration::ZERO);
    for &seed in &seeds {
        let s = spec.generate(seed);
        let cov = CoverageMap::build(&s);
        for (scope, acc) in [
            (DominantScope::PerSlot, &mut per_slot),
            (DominantScope::Global, &mut global),
        ] {
            let t0 = std::time::Instant::now();
            let inst = HasteRInstance::build(&s, &cov, scope);
            let r = solve_offline(
                &s,
                &cov,
                &OfflineConfig {
                    scope,
                    ..OfflineConfig::greedy()
                },
            );
            acc.2 += t0.elapsed();
            acc.0 += r.report.total_utility;
            acc.1 += inst.ground_set_size();
        }
    }
    println!("\n# ablation 2: dominant-set scope (offline, C=1)");
    println!(
        "  per-slot: utility {:.4}, ground set {:.0}, {:.1?}/topology",
        per_slot.0 / n,
        per_slot.1 as f64 / n,
        per_slot.2 / seeds.len() as u32
    );
    println!(
        "  global  : utility {:.4}, ground set {:.0}, {:.1?}/topology",
        global.0 / n,
        global.1 as f64 / n,
        global.2 / seeds.len() as u32
    );

    // 3. Localized versus global online renegotiation.
    {
        use haste::distributed::{solve_online, OnlineConfig};
        let mut g = (0.0, 0u64);
        let mut l = (0.0, 0u64);
        for &seed in &seeds {
            let s = spec.generate(seed);
            let cov = CoverageMap::build(&s);
            let global = solve_online(&s, &cov, &OnlineConfig::default());
            let local = solve_online(
                &s,
                &cov,
                &OnlineConfig {
                    localized: true,
                    ..OnlineConfig::default()
                },
            );
            g.0 += global.report.total_utility;
            g.1 += global.stats.messages;
            l.0 += local.report.total_utility;
            l.1 += local.stats.messages;
        }
        println!("\n# ablation 3: online renegotiation scope (C=1)");
        println!(
            "  global   : utility {:.4}, {:.0} messages",
            g.0 / n,
            g.1 as f64 / n
        );
        println!(
            "  localized: utility {:.4}, {:.0} messages",
            l.0 / n,
            l.1 as f64 / n
        );
    }

    // 4. Concave utility extension: U(x) = min((x/E)^p, 1).
    println!("\n# ablation 4: utility function shape (offline, C=4)");
    for (label, model) in [
        ("linear-bounded", UtilityModel::LinearBounded),
        ("concave p=0.7 ", UtilityModel::ConcavePower(0.7)),
        ("concave p=0.4 ", UtilityModel::ConcavePower(0.4)),
    ] {
        let mut total = 0.0;
        for &seed in &seeds {
            let mut s = spec.generate(seed);
            s.utility = model;
            let cov = CoverageMap::build(&s);
            total += solve_offline(&s, &cov, &OfflineConfig::default())
                .report
                .total_utility;
        }
        println!("  {label}: utility {:.4}", total / n);
    }
}
