//! Reproduces the paper's headline claims: the online algorithm's fraction
//! of the brute-force optimum (small-scale) and its improvement over the
//! online baselines (default setup).

use std::time::Instant;

use haste::prelude::*;

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::headline(&config.ctx);
    print!("{}", table.render());
    let v = &table.series[0].values;
    println!("\nonline/optimal ratio: mean {:.4}, min {:.4}", v[0], v[1]);
    println!("improvement over GreedyUtility: {:+.2}%", v[2]);
    println!("improvement over GreedyCover:   {:+.2}%", v[3]);

    // Solver cost profile of one representative offline solve on the
    // paper-default setup, so the headline run also reports where the
    // time and oracle calls go.
    let scenario = ScenarioSpec::paper_default().generate(config.ctx.base_seed);
    let cov_start = Instant::now();
    let coverage = CoverageMap::build_par(&scenario, config.ctx.threads);
    let coverage_build = cov_start.elapsed();
    let mut result = solve_offline(
        &scenario,
        &coverage,
        &OfflineConfig {
            threads: config.ctx.threads,
            ..OfflineConfig::default()
        },
    );
    result.metrics.coverage_build = coverage_build;
    println!(
        "representative offline solve (n={}, m={}): {}",
        scenario.num_chargers(),
        scenario.num_tasks(),
        result.metrics
    );
    haste_bench::emit(&table, &config);
}
