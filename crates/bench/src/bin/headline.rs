//! Reproduces the paper's headline claims: the online algorithm's fraction
//! of the brute-force optimum (small-scale) and its improvement over the
//! online baselines (default setup).

fn main() {
    let config = haste_bench::parse_args();
    let table = haste::sim::experiments::headline(&config.ctx);
    print!("{}", table.render());
    let v = &table.series[0].values;
    println!("\nonline/optimal ratio: mean {:.4}, min {:.4}", v[0], v[1]);
    println!("improvement over GreedyUtility: {:+.2}%", v[2]);
    println!("improvement over GreedyCover:   {:+.2}%", v[3]);
    haste_bench::emit(&table, &config);
}
