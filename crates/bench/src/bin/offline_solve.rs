//! End-to-end offline solve benchmark on the paper's default setup
//! (`n = 50`, `m = 200`): wall-clock of the full pipeline at 1 thread vs.
//! `--threads T`, with the solver's phase metrics, plus a bit-identity
//! check that the parallel path returns exactly the sequential solution.

use std::time::Instant;

use haste::prelude::*;

fn main() {
    let config = haste_bench::parse_args();
    let threads = config.ctx.threads.max(1);
    let spec = ScenarioSpec::paper_default();
    let scenario = spec.generate(config.ctx.base_seed);
    println!(
        "offline solve: n={}, m={}, seed={}",
        scenario.num_chargers(),
        scenario.num_tasks(),
        config.ctx.base_seed
    );

    let mut results = Vec::new();
    for t in [1usize, threads] {
        let cov_start = Instant::now();
        let coverage = CoverageMap::build_par(&scenario, t);
        let coverage_build = cov_start.elapsed();
        let solve_start = Instant::now();
        let mut result = solve_offline(
            &scenario,
            &coverage,
            &OfflineConfig {
                threads: t,
                ..OfflineConfig::default()
            },
        );
        let wall = solve_start.elapsed();
        result.metrics.coverage_build = coverage_build;
        println!(
            "threads={t}: solve {:.1} ms, relaxed value {:.6}",
            wall.as_secs_f64() * 1e3,
            result.relaxed_value
        );
        println!("  {}", result.metrics);
        results.push((wall, result));
        if t == 1 && threads == 1 {
            break;
        }
    }

    if let [(base_wall, base), (par_wall, par)] = &results[..] {
        assert_eq!(
            base.schedule, par.schedule,
            "threads={threads} produced a different schedule"
        );
        assert_eq!(
            base.relaxed_value.to_bits(),
            par.relaxed_value.to_bits(),
            "threads={threads} produced a different value"
        );
        assert_eq!(base.metrics.oracle_marginals, par.metrics.oracle_marginals);
        println!(
            "bit-identical across thread counts; speedup {:.2}x at {threads} threads",
            base_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-12)
        );
    }
}
