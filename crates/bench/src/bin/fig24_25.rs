//! Regenerates Figs. 24-25: per-task utilities on testbed topology 2
//! (16 transmitters / 20 nodes), centralized offline and distributed online.

fn main() {
    let config = haste_bench::parse_args();
    haste_bench::emit(&haste::testbed::fig24(), &config);
    haste_bench::emit(&haste::testbed::fig25(), &config);
}
