//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--topologies N` — random topologies per data point (default 30),
//! * `--paper` — paper fidelity (100 topologies),
//! * `--quick` — smoke test (4 topologies),
//! * `--seed S` — base RNG seed (default 42),
//! * `--threads T` — worker threads (default: all cores),
//! * `--out DIR` — where CSVs are written (default `results/`).
//!
//! Results are printed as aligned tables and saved as CSV.

use std::path::{Path, PathBuf};

use haste::sim::{ExperimentCtx, FigureTable};

/// Default output directory: `results/` under the workspace root, so the
/// binaries write to the same place no matter which directory they are
/// launched from (`cargo run` from a crate directory used to scatter
/// `results/` folders into the source tree).
pub fn default_out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
        .join("results")
}

/// Parsed command-line configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Experiment context (topologies, threads, seed).
    pub ctx: ExperimentCtx,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

/// Parses `std::env::args`; exits with a usage message on error.
pub fn parse_args() -> RunConfig {
    let mut ctx = ExperimentCtx::default();
    let mut out_dir = default_out_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => ctx = ExperimentCtx::paper(),
            "--quick" => ctx = ExperimentCtx::quick(),
            "--topologies" => {
                ctx.topologies = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--topologies needs a number"));
            }
            "--seed" => {
                ctx.base_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--threads" => {
                ctx.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--out" => {
                out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    RunConfig { ctx, out_dir }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <figure-binary> [--paper | --quick | --topologies N] \
         [--seed S] [--threads T] [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Prints a table and writes its CSV next to the others.
pub fn emit(table: &FigureTable, config: &RunConfig) {
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all(&config.out_dir) {
        eprintln!("warning: cannot create {}: {e}", config.out_dir.display());
        return;
    }
    let path = config.out_dir.join(format!("{}.csv", table.id));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("(saved {})\n", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste::sim::Series;

    #[test]
    fn default_out_dir_is_anchored_at_the_workspace_root() {
        let dir = default_out_dir();
        assert!(dir.is_absolute(), "default out dir must not depend on CWD");
        assert!(dir.ends_with("results"));
        assert!(
            dir.parent().unwrap().join("Cargo.toml").exists(),
            "{} is not under the workspace root",
            dir.display()
        );
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join(format!("haste-bench-test-{}", std::process::id()));
        let cfg = RunConfig {
            ctx: ExperimentCtx::quick(),
            out_dir: dir.clone(),
        };
        let table = FigureTable {
            id: "figtest".into(),
            title: "t".into(),
            x_label: "x".into(),
            x: vec![1.0],
            series: vec![Series {
                name: "s".into(),
                values: vec![0.5],
            }],
        };
        emit(&table, &cfg);
        let csv = std::fs::read_to_string(dir.join("figtest.csv")).unwrap();
        assert!(csv.starts_with("x,s"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
