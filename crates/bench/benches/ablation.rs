//! Criterion benchmarks for the ablation knobs of DESIGN.md: switch-aware
//! tie-breaking and dominant-set scope (the *quality* side of these
//! ablations is printed by the `ablation` binary; these measure cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haste::core::{solve_offline, DominantScope, OfflineConfig};
use haste::model::CoverageMap;
use haste::sim::ScenarioSpec;

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        num_chargers: 15,
        num_tasks: 60,
        release_horizon: 20,
        duration_range: (5, 20),
        ..ScenarioSpec::paper_default()
    }
}

fn bench_switch_aware(c: &mut Criterion) {
    let scenario = spec().generate(8);
    let coverage = CoverageMap::build(&scenario);
    let mut group = c.benchmark_group("switch_aware_tie_break");
    for aware in [false, true] {
        group.bench_with_input(BenchmarkId::from_parameter(aware), &aware, |b, &aware| {
            b.iter(|| {
                solve_offline(
                    &scenario,
                    &coverage,
                    &OfflineConfig {
                        switch_aware: aware,
                        ..OfflineConfig::greedy()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_scope(c: &mut Criterion) {
    let scenario = spec().generate(9);
    let coverage = CoverageMap::build(&scenario);
    let mut group = c.benchmark_group("dominant_scope");
    for scope in [DominantScope::PerSlot, DominantScope::Global] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scope:?}")),
            &scope,
            |b, &scope| {
                b.iter(|| {
                    solve_offline(
                        &scenario,
                        &coverage,
                        &OfflineConfig {
                            scope,
                            ..OfflineConfig::greedy()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_switch_aware, bench_scope);
criterion_main!(benches);
