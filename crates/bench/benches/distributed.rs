//! Criterion benchmarks of the distributed negotiation: round engine vs
//! genuinely threaded engine, and the full online event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haste::core::{DominantScope, HasteRInstance};
use haste::distributed::{
    negotiate_rounds, negotiate_threaded, solve_online, NegotiationConfig, NeighborGraph,
    OnlineConfig,
};
use haste::model::CoverageMap;
use haste::sim::ScenarioSpec;

fn medium_spec() -> ScenarioSpec {
    ScenarioSpec {
        num_chargers: 15,
        num_tasks: 60,
        release_horizon: 20,
        duration_range: (5, 20),
        ..ScenarioSpec::paper_default()
    }
}

fn bench_engines(c: &mut Criterion) {
    let scenario = medium_spec().generate(5);
    let coverage = CoverageMap::build(&scenario);
    let graph = NeighborGraph::build(&coverage);
    let instance = HasteRInstance::build(&scenario, &coverage, DominantScope::PerSlot);
    let cfg = NegotiationConfig::default();

    let mut group = c.benchmark_group("negotiation_engine");
    group.sample_size(20);
    group.bench_function("rounds", |b| {
        b.iter(|| negotiate_rounds(&instance, &graph, &cfg));
    });
    group.bench_function("threaded", |b| {
        b.iter(|| negotiate_threaded(&instance, &graph, &cfg));
    });
    group.finish();
}

fn bench_online_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_event_loop");
    group.sample_size(10);
    for &n in &[10usize, 25, 50] {
        let spec = ScenarioSpec {
            num_chargers: n,
            ..medium_spec()
        };
        let scenario = spec.generate(6);
        let coverage = CoverageMap::build(&scenario);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solve_online(&scenario, &coverage, &OnlineConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_online_scaling);
criterion_main!(benches);
