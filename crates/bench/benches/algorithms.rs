//! Criterion benchmarks of the core algorithmic kernels: dominant-set
//! extraction, the greedy family, TabularGreedy color scaling, and the
//! brute-force enumerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haste::core::{
    extract_dominant_sets, solve_exact, solve_offline, DominantScope, HasteRInstance, OfflineConfig,
};
use haste::model::{ChargerId, CoverageMap};
use haste::sim::ScenarioSpec;
use haste::submodular::{lazy_greedy, locally_greedy, GreedyOptions};

fn bench_dominant_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominant_sets");
    for &tasks in &[50usize, 200, 800] {
        let spec = ScenarioSpec {
            num_tasks: tasks,
            num_chargers: 1,
            ..ScenarioSpec::paper_default()
        };
        let scenario = spec.generate(1);
        let coverage = CoverageMap::build(&scenario);
        let candidates = coverage.tasks_of(ChargerId(0));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| extract_dominant_sets(candidates, scenario.params.charging_angle));
        });
    }
    group.finish();
}

fn bench_greedy_family(c: &mut Criterion) {
    let spec = ScenarioSpec {
        num_chargers: 20,
        num_tasks: 80,
        release_horizon: 30,
        duration_range: (5, 30),
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(2);
    let coverage = CoverageMap::build(&scenario);
    let instance = HasteRInstance::build(&scenario, &coverage, DominantScope::PerSlot);

    let mut group = c.benchmark_group("greedy");
    group.bench_function("locally_greedy", |b| {
        b.iter(|| locally_greedy(&instance, &GreedyOptions::default()));
    });
    group.bench_function("lazy_greedy", |b| {
        b.iter(|| lazy_greedy(&instance, 0.0));
    });
    group.finish();
}

fn bench_tabular_colors(c: &mut Criterion) {
    let spec = ScenarioSpec {
        num_chargers: 10,
        num_tasks: 40,
        release_horizon: 15,
        duration_range: (5, 15),
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(3);
    let coverage = CoverageMap::build(&scenario);

    let mut group = c.benchmark_group("tabular_colors");
    for &colors in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(colors),
            &colors,
            |b, &colors| {
                b.iter(|| {
                    solve_offline(
                        &scenario,
                        &coverage,
                        &OfflineConfig {
                            colors,
                            samples: 4 * colors,
                            ..OfflineConfig::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let scenario = ScenarioSpec::small_scale().generate(4);
    let coverage = CoverageMap::build(&scenario);
    c.bench_function("brute_force_small_scale", |b| {
        b.iter(|| solve_exact(&scenario, &coverage, 1 << 24).ok());
    });
}

criterion_group!(
    benches,
    bench_dominant_sets,
    bench_greedy_family,
    bench_tabular_colors,
    bench_brute_force
);
criterion_main!(benches);
