//! Criterion benchmarks of the model substrate: coverage precomputation,
//! HASTE-R instance construction, and the P1 evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haste::core::{solve_offline, DominantScope, HasteRInstance, OfflineConfig};
use haste::model::{evaluate, CoverageMap, EvalOptions};
use haste::sim::ScenarioSpec;

fn bench_coverage_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_map");
    for &(n, m) in &[(10usize, 50usize), (50, 200), (100, 400)] {
        let spec = ScenarioSpec {
            num_chargers: n,
            num_tasks: m,
            ..ScenarioSpec::paper_default()
        };
        let scenario = spec.generate(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &scenario,
            |b, s| b.iter(|| CoverageMap::build(s)),
        );
    }
    group.finish();
}

fn bench_instance_build(c: &mut Criterion) {
    let scenario = ScenarioSpec::paper_default().generate(1);
    let coverage = CoverageMap::build(&scenario);
    let mut group = c.benchmark_group("instance_build");
    group.sample_size(20);
    for scope in [DominantScope::PerSlot, DominantScope::Global] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scope:?}")),
            &scope,
            |b, &scope| b.iter(|| HasteRInstance::build(&scenario, &coverage, scope)),
        );
    }
    group.finish();
}

fn bench_evaluator(c: &mut Criterion) {
    let scenario = ScenarioSpec::paper_default().generate(1);
    let coverage = CoverageMap::build(&scenario);
    let result = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
    c.bench_function("p1_evaluator_paper_default", |b| {
        b.iter(|| {
            evaluate(
                &scenario,
                &coverage,
                &result.schedule,
                EvalOptions::default(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_coverage_map,
    bench_instance_build,
    bench_evaluator
);
criterion_main!(benches);
