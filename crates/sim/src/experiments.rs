//! The experiment registry: one function per figure of the paper's
//! evaluation (Section 7). Each returns a [`FigureTable`] holding the
//! numbers behind the figure; the `haste-bench` binaries print and save
//! them.
//!
//! Every data point averages `ctx.topologies` seeded random topologies
//! (the paper uses 100), evaluated in parallel.

use haste_core::BaselineKind;
use haste_model::CoverageMap;
use haste_parallel::par_map;

use crate::algo::Algo;
use crate::generators::{Placement, ScenarioSpec};
use crate::stats::BoxStats;
use crate::table::{FigureTable, Series};

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Random topologies per data point (paper fidelity: 100).
    pub topologies: usize,
    /// Worker threads for the topology loop.
    pub threads: usize,
    /// Base RNG seed; topology `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        ExperimentCtx {
            topologies: 30,
            threads: haste_parallel::default_threads(),
            base_seed: 42,
        }
    }
}

impl ExperimentCtx {
    /// Full paper fidelity: 100 topologies per point.
    pub fn paper() -> Self {
        ExperimentCtx {
            topologies: 100,
            ..ExperimentCtx::default()
        }
    }

    /// A quick smoke-test context.
    pub fn quick() -> Self {
        ExperimentCtx {
            topologies: 4,
            ..ExperimentCtx::default()
        }
    }
}

/// Mean utility of each algorithm at each x tick, averaged over topologies.
fn sweep(
    ctx: &ExperimentCtx,
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    spec_of: impl Fn(f64) -> ScenarioSpec + Sync,
    algos: &[Algo],
) -> FigureTable {
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            name: a.label(),
            values: Vec::with_capacity(xs.len()),
        })
        .collect();
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    for &x in xs {
        let spec = spec_of(x);
        let per_topology: Vec<Vec<Option<f64>>> = par_map(&seeds, ctx.threads, |_, &seed| {
            let scenario = spec.generate(seed);
            let coverage = CoverageMap::build(&scenario);
            algos
                .iter()
                .map(|a| a.run(&scenario, &coverage, seed))
                .collect()
        });
        // Keep only topologies every algorithm completed (brute force may
        // exceed its budget) — otherwise the series would average over
        // different instance sets and stop being comparable.
        let complete: Vec<&Vec<Option<f64>>> = per_topology
            .iter()
            .filter(|row| row.iter().all(Option::is_some))
            .collect();
        for (ai, s) in series.iter_mut().enumerate() {
            let vals: Vec<f64> = complete.iter().filter_map(|row| row[ai]).collect();
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            s.values.push(mean);
        }
    }
    FigureTable {
        id: id.into(),
        title: title.into(),
        x_label: x_label.into(),
        x: xs.to_vec(),
        series,
    }
}

/// Distribution of HASTE's utility per color count, as a box plot table.
fn color_box(ctx: &ExperimentCtx, id: &str, title: &str, online: bool) -> FigureTable {
    let colors: Vec<f64> = (1..=8).map(|c| c as f64).collect();
    let names = ["min", "q1", "median", "q3", "max", "mean"];
    let mut series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            name: (*n).into(),
            values: Vec::new(),
        })
        .collect();
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let spec = ScenarioSpec::paper_default();
    for &c in &colors {
        let algo = if online {
            Algo::OnlineHaste { colors: c as usize }
        } else {
            Algo::OfflineHaste { colors: c as usize }
        };
        let vals: Vec<f64> = par_map(&seeds, ctx.threads, |_, &seed| {
            let scenario = spec.generate(seed);
            let coverage = CoverageMap::build(&scenario);
            algo.run(&scenario, &coverage, seed).unwrap_or(f64::NAN)
        });
        let b = BoxStats::of(&vals);
        for (s, v) in series
            .iter_mut()
            .zip([b.min, b.q1, b.median, b.q3, b.max, b.mean])
        {
            s.values.push(v);
        }
    }
    FigureTable {
        id: id.into(),
        title: title.into(),
        x_label: "C".into(),
        x: colors,
        series,
    }
}

const DEG_TICKS: [f64; 12] = [
    30.0, 60.0, 90.0, 120.0, 150.0, 180.0, 210.0, 240.0, 270.0, 300.0, 330.0, 360.0,
];

fn offline_roster() -> Vec<Algo> {
    vec![
        Algo::OfflineHaste { colors: 1 },
        Algo::OfflineHaste { colors: 4 },
        Algo::OfflineBaseline(BaselineKind::GreedyUtility),
        Algo::OfflineBaseline(BaselineKind::GreedyCover),
    ]
}

fn online_roster() -> Vec<Algo> {
    vec![
        Algo::OnlineHaste { colors: 1 },
        Algo::OnlineHaste { colors: 4 },
        Algo::OnlineBaseline(BaselineKind::GreedyUtility),
        Algo::OnlineBaseline(BaselineKind::GreedyCover),
    ]
}

/// Fig. 4: charging angle `A_s` versus utility, centralized offline.
pub fn fig04(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig04",
        "A_s versus charging utility (centralized offline)",
        "A_s (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::paper_default();
            spec.params.charging_angle = deg.to_radians();
            spec
        },
        &offline_roster(),
    )
}

/// Fig. 5: receiving angle `A_o` versus utility, centralized offline.
pub fn fig05(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig05",
        "A_o versus charging utility (centralized offline)",
        "A_o (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::paper_default();
            spec.params.receiving_angle = deg.to_radians();
            spec
        },
        &offline_roster(),
    )
}

/// Fig. 6: switching delay `ρ` versus utility, centralized offline.
pub fn fig06(ctx: &ExperimentCtx) -> FigureTable {
    let xs: Vec<f64> = (0..=8).map(|i| i as f64 / 8.0).collect();
    sweep(
        ctx,
        "fig06",
        "rho versus charging utility (centralized offline)",
        "rho",
        &xs,
        |rho| {
            let mut spec = ScenarioSpec::paper_default();
            spec.rho = rho;
            spec
        },
        &offline_roster(),
    )
}

/// Fig. 7: color count `C` versus utility distribution, offline (box plot).
pub fn fig07(ctx: &ExperimentCtx) -> FigureTable {
    color_box(
        ctx,
        "fig07",
        "C versus charging utility (centralized offline, box plot)",
        false,
    )
}

/// Fig. 8: small-scale `A_s` sweep against the brute-force optimum
/// (centralized offline).
pub fn fig08(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig08",
        "A_s versus charging utility (small-scale, vs optimal)",
        "A_s (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::small_scale();
            spec.params.charging_angle = deg.to_radians();
            spec
        },
        &[
            Algo::Exact { budget: 1 << 24 },
            Algo::OfflineHaste { colors: 1 },
            Algo::OfflineHaste { colors: 4 },
        ],
    )
}

/// Fig. 9: small-scale `A_o` sweep against the brute-force optimum
/// (distributed online).
pub fn fig09(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig09",
        "A_o versus charging utility (small-scale, online vs optimal)",
        "A_o (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::small_scale();
            spec.params.receiving_angle = deg.to_radians();
            spec
        },
        &[
            Algo::Exact { budget: 1 << 24 },
            Algo::OnlineHaste { colors: 1 },
            Algo::OnlineHaste { colors: 4 },
        ],
    )
}

/// Required-energy × task-duration grid (Figs. 10 offline / 11 online):
/// rows are mean energies `Ē` in kJ, series are mean durations in minutes.
fn energy_duration_grid(ctx: &ExperimentCtx, id: &str, online: bool) -> FigureTable {
    let energies_kj = [10.0, 20.0, 30.0, 40.0, 50.0];
    let durations_min = [30.0, 40.0, 50.0, 60.0, 70.0];
    let algo = if online {
        Algo::OnlineHaste { colors: 4 }
    } else {
        Algo::OfflineHaste { colors: 4 }
    };
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let mut series: Vec<Series> = durations_min
        .iter()
        .map(|d| Series {
            name: format!("dt={d}min"),
            values: Vec::new(),
        })
        .collect();
    for &e_kj in &energies_kj {
        for (di, &d) in durations_min.iter().enumerate() {
            let mut spec = ScenarioSpec::paper_default();
            let e = e_kj * 1000.0;
            spec.energy_range = (0.5 * e, 1.5 * e);
            spec.duration_range = ((0.5 * d) as usize, (1.5 * d) as usize);
            let vals: Vec<f64> = par_map(&seeds, ctx.threads, |_, &seed| {
                let scenario = spec.generate(seed);
                let coverage = CoverageMap::build(&scenario);
                algo.run(&scenario, &coverage, seed).unwrap_or(f64::NAN)
            });
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            series[di].values.push(mean);
        }
    }
    FigureTable {
        id: id.into(),
        title: format!(
            "required energy x task duration versus utility ({})",
            if online { "online" } else { "offline" }
        ),
        x_label: "E_j (kJ)".into(),
        x: energies_kj.to_vec(),
        series,
    }
}

/// Fig. 10: `Ē × Δt̄` grid, centralized offline.
pub fn fig10(ctx: &ExperimentCtx) -> FigureTable {
    energy_duration_grid(ctx, "fig10", false)
}

/// Fig. 11: `Ē × Δt̄` grid, distributed online.
pub fn fig11(ctx: &ExperimentCtx) -> FigureTable {
    energy_duration_grid(ctx, "fig11", true)
}

/// Fig. 12: `A_s` versus utility, distributed online.
pub fn fig12(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig12",
        "A_s versus charging utility (distributed online)",
        "A_s (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::paper_default();
            spec.params.charging_angle = deg.to_radians();
            spec
        },
        &online_roster(),
    )
}

/// Fig. 13: `A_o` versus utility, distributed online.
pub fn fig13(ctx: &ExperimentCtx) -> FigureTable {
    sweep(
        ctx,
        "fig13",
        "A_o versus charging utility (distributed online)",
        "A_o (deg)",
        &DEG_TICKS,
        |deg| {
            let mut spec = ScenarioSpec::paper_default();
            spec.params.receiving_angle = deg.to_radians();
            spec
        },
        &online_roster(),
    )
}

/// Fig. 14: `ρ` versus utility, distributed online.
pub fn fig14(ctx: &ExperimentCtx) -> FigureTable {
    let xs: Vec<f64> = (0..=8).map(|i| i as f64 / 8.0).collect();
    sweep(
        ctx,
        "fig14",
        "rho versus charging utility (distributed online)",
        "rho",
        &xs,
        |rho| {
            let mut spec = ScenarioSpec::paper_default();
            spec.rho = rho;
            spec
        },
        &online_roster(),
    )
}

/// Fig. 15: color count `C` versus utility distribution, online (box plot).
pub fn fig15(ctx: &ExperimentCtx) -> FigureTable {
    color_box(
        ctx,
        "fig15",
        "C versus charging utility (distributed online, box plot)",
        true,
    )
}

/// Fig. 16: communication cost versus network size (`C = 1`): average
/// messages and rounds per time slot of the online negotiation.
pub fn fig16(ctx: &ExperimentCtx) -> FigureTable {
    let ns: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let mut messages = Series {
        name: "messages/slot".into(),
        values: Vec::new(),
    };
    let mut rounds = Series {
        name: "rounds/slot".into(),
        values: Vec::new(),
    };
    let algo = Algo::OnlineHaste { colors: 1 };
    for &n in &ns {
        let mut spec = ScenarioSpec::paper_default();
        spec.num_chargers = n as usize;
        let per: Vec<(f64, f64)> = par_map(&seeds, ctx.threads, |_, &seed| {
            let scenario = spec.generate(seed);
            let coverage = CoverageMap::build(&scenario);
            let result = algo.run_online(&scenario, &coverage, seed);
            (
                result.stats.avg_messages_per_slot(),
                result.stats.avg_rounds_per_slot(),
            )
        });
        messages
            .values
            .push(per.iter().map(|p| p.0).sum::<f64>() / per.len().max(1) as f64);
        rounds
            .values
            .push(per.iter().map(|p| p.1).sum::<f64>() / per.len().max(1) as f64);
    }
    FigureTable {
        id: "fig16".into(),
        title: "communication cost versus number of chargers (C=1)".into(),
        x_label: "n".into(),
        x: ns,
        series: vec![messages, rounds],
    }
}

/// Fig. 17: Gaussian task-placement spread versus utility: rows are `σ_x`,
/// series are `σ_y` (50 tasks, offline HASTE C=4).
pub fn fig17(ctx: &ExperimentCtx) -> FigureTable {
    let sigmas = [5.0, 10.0, 15.0, 20.0, 25.0];
    let algo = Algo::OfflineHaste { colors: 4 };
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let mut series: Vec<Series> = sigmas
        .iter()
        .map(|s| Series {
            name: format!("sigma_y={s}"),
            values: Vec::new(),
        })
        .collect();
    for &sx in &sigmas {
        for (yi, &sy) in sigmas.iter().enumerate() {
            let mut spec = ScenarioSpec::paper_default();
            spec.num_tasks = 50;
            spec.placement = Placement::Gaussian {
                sigma_x: sx,
                sigma_y: sy,
            };
            let vals: Vec<f64> = par_map(&seeds, ctx.threads, |_, &seed| {
                let scenario = spec.generate(seed);
                let coverage = CoverageMap::build(&scenario);
                algo.run(&scenario, &coverage, seed).unwrap_or(f64::NAN)
            });
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            series[yi].values.push(mean);
        }
    }
    FigureTable {
        id: "fig17".into(),
        title: "overall charging utility versus Gaussian placement spread".into(),
        x_label: "sigma_x (m)".into(),
        x: sigmas.to_vec(),
        series,
    }
}

/// Fig. 18: individual charging utility versus required energy `E_j`
/// (`E_j ∈ [5, 100] kJ`): per-bin max and mean utility plus the `∝ 1/E_j`
/// envelope the paper fits.
pub fn fig18(ctx: &ExperimentCtx) -> FigureTable {
    let mut spec = ScenarioSpec::paper_default();
    spec.energy_range = (5_000.0, 100_000.0);
    let algo = Algo::OfflineHaste { colors: 4 };
    let bins = 10usize;
    let (lo, hi) = spec.energy_range;
    let width = (hi - lo) / bins as f64;
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    // Collect (E_j, utility) for every task of every topology.
    let per_topology: Vec<Vec<(f64, f64)>> = par_map(&seeds, ctx.threads, |_, &seed| {
        let scenario = spec.generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let result = haste_core::solve_offline(
            &scenario,
            &coverage,
            &haste_core::OfflineConfig {
                colors: 4,
                seed,
                ..haste_core::OfflineConfig::default()
            },
        );
        scenario
            .tasks
            .iter()
            .zip(&result.report.per_task_utility)
            .map(|(t, &u)| (t.required_energy, u))
            .collect()
    });
    let _ = algo;
    // The paper's Fig. 18 is a scatter of the 200 tasks of one run with a
    // 1/E envelope over its maxima; take the max from the first topology
    // (a multi-topology max would only collect outliers) and the mean over
    // all topologies.
    let mut max_u = vec![0.0f64; bins];
    let mut sum_u = vec![0.0f64; bins];
    let mut count = vec![0usize; bins];
    for (ti, rows) in per_topology.into_iter().enumerate() {
        for (e, u) in rows {
            let b = (((e - lo) / width) as usize).min(bins - 1);
            if ti == 0 {
                max_u[b] = max_u[b].max(u);
            }
            sum_u[b] += u;
            count[b] += 1;
        }
    }
    let centers: Vec<f64> = (0..bins)
        .map(|b| (lo + (b as f64 + 0.5) * width) / 1000.0)
        .collect();
    // Envelope c/E anchored so it passes through the first bin's max.
    let c = max_u[0] * centers[0];
    FigureTable {
        id: "fig18".into(),
        title: "individual charging utility versus required energy".into(),
        x_label: "E_j (kJ)".into(),
        x: centers.clone(),
        series: vec![
            Series {
                name: "max utility".into(),
                values: max_u.clone(),
            },
            Series {
                name: "mean utility".into(),
                values: (0..bins)
                    .map(|b| {
                        if count[b] == 0 {
                            f64::NAN
                        } else {
                            sum_u[b] / count[b] as f64
                        }
                    })
                    .collect(),
            },
            Series {
                name: "c/E envelope".into(),
                values: centers.iter().map(|&e| (c / e).min(1.0)).collect(),
            },
        ],
    }
}

/// Extension experiment (not in the paper): robustness to charger
/// failures. `x` chargers die at staggered slots; the online algorithm
/// replans around them. Series: delivered utility, and the fraction of the
/// healthy run's utility retained.
pub fn fig_failures(ctx: &ExperimentCtx) -> FigureTable {
    use haste_distributed::{solve_online, ChargerFailure, OnlineConfig};
    let spec = ScenarioSpec {
        num_chargers: 20,
        num_tasks: 80,
        release_horizon: 30,
        duration_range: (5, 30),
        ..ScenarioSpec::paper_default()
    };
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let failure_counts: Vec<f64> = (0..=5).map(|k| (2 * k) as f64).collect();
    let mut utility = Series {
        name: "utility".into(),
        values: Vec::new(),
    };
    let mut retained = Series {
        name: "fraction of healthy".into(),
        values: Vec::new(),
    };
    for &fc in &failure_counts {
        let fc = fc as usize;
        let per: Vec<(f64, f64)> = par_map(&seeds, ctx.threads, |_, &seed| {
            let scenario = spec.generate(seed);
            let coverage = haste_model::CoverageMap::build(&scenario);
            let healthy = solve_online(&scenario, &coverage, &OnlineConfig::default());
            // Kill chargers round-robin at staggered slots.
            let failures: Vec<ChargerFailure> = (0..fc)
                .map(|i| ChargerFailure {
                    charger: haste_model::ChargerId(
                        ((seed as usize + i * 7) % scenario.num_chargers()) as u32,
                    ),
                    slot: 2 + 3 * i,
                })
                .collect();
            let failed = solve_online(
                &scenario,
                &coverage,
                &OnlineConfig {
                    failures,
                    ..OnlineConfig::default()
                },
            );
            let h = healthy.report.total_utility.max(1e-12);
            (failed.report.total_utility, failed.report.total_utility / h)
        });
        utility
            .values
            .push(per.iter().map(|p| p.0).sum::<f64>() / per.len().max(1) as f64);
        retained
            .values
            .push(per.iter().map(|p| p.1).sum::<f64>() / per.len().max(1) as f64);
    }
    FigureTable {
        id: "fig_failures".into(),
        title: "extension: charger failures versus delivered utility (online)".into(),
        x_label: "failed chargers".into(),
        x: failure_counts,
        series: vec![utility, retained],
    }
}

/// Headline claims (Section 7.3.1 / abstract): the online algorithm's
/// fraction of the brute-force optimum on small-scale instances, and its
/// average improvement over the online baselines at the default setup.
pub fn headline(ctx: &ExperimentCtx) -> FigureTable {
    // Part 1: online vs optimal on small-scale instances.
    let spec = ScenarioSpec::small_scale();
    let seeds: Vec<u64> = (0..ctx.topologies as u64)
        .map(|t| ctx.base_seed + t)
        .collect();
    let ratios: Vec<f64> = par_map(&seeds, ctx.threads, |_, &seed| {
        let scenario = spec.generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let opt = Algo::Exact { budget: 1 << 24 }.run(&scenario, &coverage, seed);
        let online = Algo::OnlineHaste { colors: 4 }.run(&scenario, &coverage, seed);
        match (opt, online) {
            (Some(o), Some(v)) if o > 1e-12 => Some(v / o),
            _ => None,
        }
    })
    .into_iter()
    .flatten()
    .collect();
    let ratio_mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let ratio_min = ratios.iter().copied().fold(f64::INFINITY, f64::min);

    // Part 2: improvement over baselines at the default setup.
    let spec = ScenarioSpec::paper_default();
    let rows: Vec<(f64, f64, f64)> = par_map(&seeds, ctx.threads, |_, &seed| {
        let scenario = spec.generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let h = Algo::OnlineHaste { colors: 4 }
            .run(&scenario, &coverage, seed)
            .unwrap_or(f64::NAN);
        let bu = Algo::OnlineBaseline(BaselineKind::GreedyUtility)
            .run(&scenario, &coverage, seed)
            .unwrap_or(f64::NAN);
        let bc = Algo::OnlineBaseline(BaselineKind::GreedyCover)
            .run(&scenario, &coverage, seed)
            .unwrap_or(f64::NAN);
        (h, bu, bc)
    });
    let mean = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64
    };
    let (h, bu, bc) = (mean(&|r| r.0), mean(&|r| r.1), mean(&|r| r.2));

    FigureTable {
        id: "headline".into(),
        title: "headline claims: fraction of optimum and baseline improvements".into(),
        x_label: "metric".into(),
        x: vec![1.0, 2.0, 3.0, 4.0],
        series: vec![Series {
            name: "value".into(),
            values: vec![
                ratio_mean,
                ratio_min,
                100.0 * (h - bu) / bu, // % over GreedyUtility
                100.0 * (h - bc) / bc, // % over GreedyCover
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            topologies: 2,
            threads: 2,
            base_seed: 7,
        }
    }

    /// A cut-down sweep exercising the machinery end to end.
    #[test]
    fn sweep_machinery_works() {
        let ctx = tiny_ctx();
        let t = sweep(
            &ctx,
            "t",
            "test",
            "A_s (deg)",
            &[60.0, 360.0],
            |deg| {
                let mut spec = ScenarioSpec::small_scale();
                spec.params.charging_angle = deg.to_radians();
                spec
            },
            &[
                Algo::OfflineHaste { colors: 1 },
                Algo::OfflineBaseline(BaselineKind::GreedyCover),
            ],
        );
        assert_eq!(t.x.len(), 2);
        assert_eq!(t.series.len(), 2);
        // Wider charging angle cannot hurt HASTE on average.
        let narrow = t.value("HASTE(C=1)", 0).unwrap();
        let wide = t.value("HASTE(C=1)", 1).unwrap();
        assert!(wide >= narrow - 1e-9, "wide {wide} < narrow {narrow}");
    }

    #[test]
    fn small_scale_exact_vs_online_ratio_supports_theorem() {
        // The empirical heart of Figs. 8-9: HASTE achieves far more than
        // its worst-case bound of the optimum on small instances.
        let ctx = ExperimentCtx {
            topologies: 3,
            threads: 3,
            base_seed: 11,
        };
        let spec = ScenarioSpec::small_scale();
        for t in 0..ctx.topologies as u64 {
            let s = spec.generate(ctx.base_seed + t);
            let cov = CoverageMap::build(&s);
            let Some(opt) = (Algo::Exact { budget: 1 << 24 }).run(&s, &cov, 0) else {
                continue;
            };
            if opt < 1e-9 {
                continue;
            }
            let v = Algo::OfflineHaste { colors: 4 }.run(&s, &cov, t).unwrap();
            let bound = (1.0 - s.rho) * 0.5; // C finite → ½(1−ρ) floor
            assert!(
                v >= bound * opt - 1e-9,
                "seed {t}: {v} below bound {} of optimum {opt}",
                bound * opt
            );
        }
    }

    #[test]
    fn fig08_smoke_runs_and_orders_series() {
        let ctx = ExperimentCtx {
            topologies: 2,
            threads: 1,
            base_seed: 5,
        };
        let t = fig08(&ctx);
        assert_eq!(t.id, "fig08");
        assert_eq!(t.series.len(), 3);
        // Optimal dominates both HASTE variants at every tick where it ran.
        for i in 0..t.x.len() {
            let opt = t.value("Optimal", i).unwrap();
            if opt.is_nan() {
                continue;
            }
            for name in ["HASTE(C=1)", "HASTE(C=4)"] {
                let v = t.value(name, i).unwrap();
                assert!(
                    v <= opt + 1e-9,
                    "{name} {v} above optimal {opt} at tick {i}"
                );
            }
        }
    }

    #[test]
    fn box_stats_table_shape() {
        // Exercise color_box on minuscule settings by calling through a
        // shrunken clone of fig07's internals (2 colors only would need a
        // private hook; instead run the public fn with a tiny context but
        // patched spec is not available — so just check fig07 runs on the
        // small spec via monkey config).
        let ctx = ExperimentCtx {
            topologies: 2,
            threads: 2,
            base_seed: 3,
        };
        // Run a reduced version manually.
        let seeds = [3u64, 4];
        let spec = ScenarioSpec::small_scale();
        let vals: Vec<f64> = seeds
            .iter()
            .map(|&seed| {
                let s = spec.generate(seed);
                let cov = CoverageMap::build(&s);
                Algo::OfflineHaste { colors: 2 }
                    .run(&s, &cov, seed)
                    .unwrap()
            })
            .collect();
        let b = BoxStats::of(&vals);
        assert!(b.min <= b.median && b.median <= b.max);
        let _ = ctx;
    }
}
