//! Summary statistics for experiment series.

/// Mean / variance / extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; empty input yields a zeroed summary.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Five-number summary for box plots (Figs. 7 and 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean (the paper reports it alongside the box).
    pub mean: f64,
}

impl BoxStats {
    /// Computes the five-number summary (linear-interpolation quantiles).
    /// Empty input yields zeros.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return BoxStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        BoxStats {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
        }
    }
}

/// Linear-interpolation quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!((s.min, s.max), (7.0, 7.0));
    }

    #[test]
    fn box_stats_quartiles() {
        let b = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert!((b.q1 - 2.0).abs() < 1e-12);
        assert!((b.q3 - 4.0).abs() < 1e-12);
        assert!((b.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_interpolates() {
        let b = BoxStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((b.median - 2.5).abs() < 1e-12);
        assert!((b.q1 - 1.75).abs() < 1e-12);
        assert!((b.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn box_stats_unsorted_input() {
        let b = BoxStats::of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.median, 3.0);
    }

    #[test]
    fn box_stats_empty_and_single() {
        assert_eq!(BoxStats::of(&[]).median, 0.0);
        let b = BoxStats::of(&[2.5]);
        assert_eq!(b.q1, 2.5);
        assert_eq!(b.q3, 2.5);
    }
}
