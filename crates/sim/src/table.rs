//! Tabular experiment output: aligned text and CSV.

use std::fmt::Write as _;

/// One legend entry of a figure: a name and one value per x tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x tick (`NaN` marks a missing point).
    pub values: Vec<f64>,
}

/// A reproduced figure as the table of numbers behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Identifier, e.g. `"fig04"`.
    pub id: String,
    /// Human title, e.g. `"A_s versus charging utility (offline)"`.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// X ticks.
    pub x: Vec<f64>,
    /// The series (same length as `x` each).
    pub series: Vec<Series>,
}

impl FigureTable {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let width = self
            .series
            .iter()
            .map(|s| s.name.len() + 2)
            .chain([self.x_label.len() + 2, 16])
            .max()
            .expect("non-empty iterator");
        let _ = write!(out, "{:>width$}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", s.name);
        }
        let _ = writeln!(out);
        for (i, &x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x:>width$.4}");
            for s in &self.series {
                let v = s.values.get(i).copied().unwrap_or(f64::NAN);
                if v.is_nan() {
                    let _ = write!(out, "{:>width$}", "-");
                } else {
                    let _ = write!(out, "{v:>width$.4}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders a CSV with the x column first.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        let _ = writeln!(out);
        for (i, &x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                let v = s.values.get(i).copied().unwrap_or(f64::NAN);
                if v.is_nan() {
                    let _ = write!(out, ",");
                } else {
                    let _ = write!(out, ",{v}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Value of the named series at x tick `i`.
    pub fn value(&self, series: &str, i: usize) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == series)
            .and_then(|s| s.values.get(i))
            .copied()
    }

    /// Mean of a series over all ticks, ignoring NaNs.
    pub fn series_mean(&self, series: &str) -> Option<f64> {
        let s = self.series.iter().find(|s| s.name == series)?;
        let vals: Vec<f64> = s.values.iter().copied().filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FigureTable {
        FigureTable {
            id: "fig00".into(),
            title: "demo".into(),
            x_label: "x".into(),
            x: vec![1.0, 2.0],
            series: vec![
                Series {
                    name: "A".into(),
                    values: vec![0.5, 0.75],
                },
                Series {
                    name: "B".into(),
                    values: vec![0.25, f64::NAN],
                },
            ],
        }
    }

    #[test]
    fn render_contains_everything() {
        let text = table().render();
        assert!(text.contains("fig00"));
        assert!(text.contains('A'));
        assert!(text.contains("0.7500"));
        assert!(text.contains('-')); // NaN marker
    }

    #[test]
    fn csv_shape() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A,B");
        assert_eq!(lines[1], "1,0.5,0.25");
        assert_eq!(lines[2], "2,0.75,");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn lookups() {
        let t = table();
        assert_eq!(t.value("A", 1), Some(0.75));
        assert_eq!(t.value("C", 0), None);
        assert!((t.series_mean("A").unwrap() - 0.625).abs() < 1e-12);
        assert_eq!(t.series_mean("B").unwrap(), 0.25); // NaN skipped
    }
}
