//! Simulation harness for HASTE: scenario generation, parallel parameter
//! sweeps, statistics, and the experiment registry reproducing every figure
//! of the paper's evaluation (Section 7).
//!
//! * [`ScenarioSpec`] — recipes for the paper's default and small-scale
//!   setups, uniform or Gaussian task placement,
//! * [`Algo`] — the algorithm roster (offline/online HASTE, baselines,
//!   brute-force optimum),
//! * [`experiments`] — `fig04()` … `fig18()` plus `headline()`, each
//!   returning the [`FigureTable`] of numbers behind the figure,
//! * [`Summary`] / [`BoxStats`] — the statistics the figures report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
pub mod experiments;
mod generators;
pub mod render;
mod stats;
mod table;

pub use algo::Algo;
pub use experiments::ExperimentCtx;
pub use generators::{Placement, ScenarioSpec};
pub use stats::{BoxStats, Summary};
pub use table::{FigureTable, Series};
