//! SVG rendering of scenarios and schedule snapshots.
//!
//! Zero-dependency visual debugging: one SVG per time slot showing the
//! field, the chargers with their current charging sectors, and the tasks
//! colored by charging utility. Useful for eyeballing what a scheduler
//! actually does (and for README screenshots).

use std::fmt::Write as _;

use haste_geometry::{Angle, Vec2};
use haste_model::{EvalReport, Scenario, Schedule, Slot};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Output width in pixels (height follows the field's aspect ratio).
    pub width: f64,
    /// Margin around the field, in meters.
    pub margin: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 720.0,
            margin: 2.0,
        }
    }
}

/// Renders one slot of a schedule as an SVG document.
///
/// * chargers are dark squares; if oriented in `slot`, their charging
///   sector is drawn as a translucent wedge,
/// * tasks are circles — grey before release / after expiry, otherwise
///   colored from red (utility 0) to green (utility 1) using
///   `report.per_task_utility` when provided.
pub fn render_svg(
    scenario: &Scenario,
    schedule: Option<&Schedule>,
    slot: Slot,
    report: Option<&EvalReport>,
    options: &RenderOptions,
) -> String {
    // World bounds.
    let mut min = Vec2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in scenario
        .chargers
        .iter()
        .map(|c| c.pos)
        .chain(scenario.tasks.iter().map(|t| t.device_pos))
    {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    if !min.x.is_finite() {
        min = Vec2::ZERO;
        max = Vec2::new(1.0, 1.0);
    }
    min -= Vec2::new(options.margin, options.margin);
    max += Vec2::new(options.margin, options.margin);
    let world_w = (max.x - min.x).max(1e-9);
    let world_h = (max.y - min.y).max(1e-9);
    let scale = options.width / world_w;
    let height = world_h * scale;
    // SVG y grows downward; flip.
    let tx = |p: Vec2| -> (f64, f64) { ((p.x - min.x) * scale, (max.y - p.y) * scale) };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.1} {:.1}">"#,
        options.width, height, options.width, height
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fcfcf8" stroke="#ccc"/>"##
    );
    let _ = writeln!(
        svg,
        r#"<text x="8" y="16" font-family="monospace" font-size="12">slot {slot}</text>"#
    );

    // Charging sectors first (under everything else).
    if let Some(schedule) = schedule {
        for charger in &scenario.chargers {
            let Some(theta) = schedule.get(charger.id, slot) else {
                continue;
            };
            let r = scenario.params.radius * scale;
            let half = scenario.params.charging_angle / 2.0;
            let (cx, cy) = tx(charger.pos);
            let a0 = theta - Angle::from_radians(half);
            let a1 = theta + Angle::from_radians(half);
            // Endpoints on the arc, with the y-flip applied to angles.
            let end = |a: Angle| (cx + r * a.radians().cos(), cy - r * a.radians().sin());
            let (x0, y0) = end(a0);
            let (x1, y1) = end(a1);
            let large = if scenario.params.charging_angle > std::f64::consts::PI {
                1
            } else {
                0
            };
            let _ = writeln!(
                svg,
                r##"<path d="M {cx:.1} {cy:.1} L {x0:.1} {y0:.1} A {r:.1} {r:.1} 0 {large} 0 {x1:.1} {y1:.1} Z" fill="#4b8bff" fill-opacity="0.15" stroke="#4b8bff" stroke-opacity="0.5"/>"##
            );
        }
    }

    // Tasks.
    for task in &scenario.tasks {
        let (x, y) = tx(task.device_pos);
        let color = if !task.active_at(slot) {
            "#bbbbbb".to_string()
        } else {
            let u = report
                .and_then(|r| r.per_task_utility.get(task.id.index()).copied())
                .unwrap_or(0.5)
                .clamp(0.0, 1.0);
            let red = (220.0 * (1.0 - u)) as u32;
            let green = (180.0 * u) as u32;
            format!("#{red:02x}{green:02x}30")
        };
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="{color}" stroke="#333"/>"##
        );
        // Device facing tick.
        let dir = Vec2::unit(task.device_facing) * (10.0 / scale);
        let (x2, y2) = tx(task.device_pos + dir);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{y:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#333"/>"##
        );
    }

    // Chargers on top.
    for charger in &scenario.chargers {
        let (x, y) = tx(charger.pos);
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="8" height="8" fill="#222"/>"##,
            x - 4.0,
            y - 4.0
        );
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;
    use haste_model::CoverageMap;

    fn scenario() -> Scenario {
        ScenarioSpec {
            num_chargers: 3,
            num_tasks: 5,
            ..ScenarioSpec::small_scale()
        }
        .generate(1)
    }

    #[test]
    fn svg_structure_is_complete() {
        let s = scenario();
        let svg = render_svg(&s, None, 0, None, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 5);
        assert_eq!(svg.matches("<rect").count(), 1 + 3); // background + chargers
    }

    #[test]
    fn sectors_drawn_only_for_oriented_chargers() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let r = haste_core::solve_offline(&s, &cov, &haste_core::OfflineConfig::greedy());
        let with = render_svg(
            &s,
            Some(&r.schedule),
            0,
            Some(&r.report),
            &RenderOptions::default(),
        );
        let without = render_svg(&s, None, 0, None, &RenderOptions::default());
        assert!(with.matches("<path").count() >= without.matches("<path").count());
        // Every path is a wedge of an oriented charger in slot 0.
        let oriented = s
            .chargers
            .iter()
            .filter(|c| r.schedule.get(c.id, 0).is_some())
            .count();
        assert_eq!(with.matches("<path").count(), oriented);
    }

    #[test]
    fn deterministic_output() {
        let s = scenario();
        let a = render_svg(&s, None, 2, None, &RenderOptions::default());
        let b = render_svg(&s, None, 2, None, &RenderOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_scenario_still_renders() {
        let mut s = scenario();
        s.chargers.clear();
        s.tasks.clear();
        let svg = render_svg(&s, None, 0, None, &RenderOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn utility_colors_move_from_red_to_green() {
        let mut s = scenario();
        // Make every task active in slot 0 so the color ramp is visible.
        for t in &mut s.tasks {
            t.release_slot = 0;
            t.end_slot = s.grid.num_slots;
        }
        let cov = CoverageMap::build(&s);
        let mut report = haste_model::evaluate_relaxed(
            &s,
            &cov,
            &haste_model::Schedule::empty(s.num_chargers(), s.grid.num_slots),
        );
        // Force extremes.
        for (i, u) in report.per_task_utility.iter_mut().enumerate() {
            *u = if i % 2 == 0 { 0.0 } else { 1.0 };
        }
        let svg = render_svg(&s, None, 0, Some(&report), &RenderOptions::default());
        assert!(svg.contains("#dc0030")); // pure red at utility 0
        assert!(svg.contains("#00b430")); // green at utility 1
    }
}
