//! Random scenario generation matching the paper's evaluation setups.

use haste_geometry::{Angle, Vec2, TAU};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How task positions are placed in the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniform over the square field (the default of Section 7.1).
    Uniform,
    /// 2D Gaussian centered at the field midpoint with the given standard
    /// deviations, clamped to the field (the insight study of Fig. 17).
    Gaussian {
        /// Standard deviation of the x coordinate, in meters.
        sigma_x: f64,
        /// Standard deviation of the y coordinate, in meters.
        sigma_y: f64,
    },
}

/// A recipe for random scenarios; `generate(seed)` turns it into a concrete
/// [`Scenario`]. Field values mirror the paper's Section 7.1 defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Charging model constants.
    pub params: ChargingParams,
    /// Side length of the square field in meters.
    pub field: f64,
    /// Number of chargers `n` (placed uniformly).
    pub num_chargers: usize,
    /// Number of tasks `m`.
    pub num_tasks: usize,
    /// Required energy range `[lo, hi]` in joules.
    pub energy_range: (f64, f64),
    /// Task duration range `[lo, hi]` in slots (inclusive).
    pub duration_range: (usize, usize),
    /// Release slots are drawn uniformly from `[0, release_horizon)`.
    /// The paper fixes durations but not releases; see DESIGN.md §6.
    pub release_horizon: usize,
    /// Slot duration `T_s` in seconds.
    pub slot_seconds: f64,
    /// Switching delay `ρ`.
    pub rho: f64,
    /// Rescheduling delay `τ` in slots.
    pub tau: usize,
    /// Per-task weight; `None` means `1/m`.
    pub weight: Option<f64>,
    /// Task placement distribution.
    pub placement: Placement,
}

impl ScenarioSpec {
    /// The paper's default simulation setup (Section 7.1): 50 m × 50 m,
    /// `n = 50`, `m = 200`, `E_j ∈ [5, 20] kJ`, durations 10–120 min,
    /// `T_s` = 1 min, `ρ = 1/12`, `τ = 1`, `w_j = 1/200`.
    ///
    /// ```
    /// let scenario = haste_sim::ScenarioSpec::paper_default().generate(7);
    /// assert_eq!(scenario.num_chargers(), 50);
    /// assert_eq!(scenario.num_tasks(), 200);
    /// scenario.validate().unwrap();
    /// ```
    pub fn paper_default() -> Self {
        ScenarioSpec {
            params: ChargingParams::simulation_default(),
            field: 50.0,
            num_chargers: 50,
            num_tasks: 200,
            energy_range: (5_000.0, 20_000.0),
            duration_range: (10, 120),
            release_horizon: 120,
            slot_seconds: 60.0,
            rho: 1.0 / 12.0,
            tau: 1,
            weight: None,
            placement: Placement::Uniform,
        }
    }

    /// The paper's small-scale setup used against the brute-force optimum
    /// (Section 7.3.1): 10 m × 10 m, `n = 5`, `m = 10`,
    /// `E_j ∈ [200, 800] J`, durations 1–5 min — tightened to 2–5 so that
    /// every task honors the paper's standing assumption
    /// `t_e − t_r ≥ 2τ·T_s` (Section 3.1) at `τ = 1`.
    pub fn small_scale() -> Self {
        ScenarioSpec {
            params: ChargingParams::simulation_default(),
            field: 10.0,
            num_chargers: 5,
            num_tasks: 10,
            energy_range: (200.0, 800.0),
            duration_range: (2, 5),
            release_horizon: 5,
            slot_seconds: 60.0,
            rho: 1.0 / 12.0,
            tau: 1,
            weight: None,
            placement: Placement::Uniform,
        }
    }

    /// Generates the concrete scenario for one topology seed.
    pub fn generate(&self, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = self.weight.unwrap_or(1.0 / self.num_tasks.max(1) as f64);

        let chargers: Vec<Charger> = (0..self.num_chargers)
            .map(|i| {
                Charger::new(
                    i as u32,
                    Vec2::new(
                        rng.gen_range(0.0..=self.field),
                        rng.gen_range(0.0..=self.field),
                    ),
                )
            })
            .collect();

        let tasks: Vec<Task> = (0..self.num_tasks)
            .map(|j| {
                let pos = self.sample_position(&mut rng);
                let facing = Angle::from_radians(rng.gen_range(0.0..TAU));
                let release = if self.release_horizon == 0 {
                    0
                } else {
                    rng.gen_range(0..self.release_horizon)
                };
                let duration = rng.gen_range(self.duration_range.0..=self.duration_range.1);
                let energy = rng.gen_range(self.energy_range.0..=self.energy_range.1);
                Task::new(
                    j as u32,
                    pos,
                    facing,
                    release,
                    release + duration,
                    energy,
                    weight,
                )
            })
            .collect();

        let num_slots = tasks.iter().map(|t| t.end_slot).max().unwrap_or(1);
        let grid = TimeGrid::new(self.slot_seconds, num_slots.max(1));
        let mut scenario = Scenario::new(self.params, grid, chargers, tasks, self.rho, self.tau)
            .expect("spec generates valid scenarios");
        scenario.tau = self.tau;
        scenario
    }

    fn sample_position(&self, rng: &mut StdRng) -> Vec2 {
        match self.placement {
            Placement::Uniform => Vec2::new(
                rng.gen_range(0.0..=self.field),
                rng.gen_range(0.0..=self.field),
            ),
            Placement::Gaussian { sigma_x, sigma_y } => {
                let mu = self.field / 2.0;
                // Rejection sampling: clamping would pile mass onto the
                // field border and distort the spread study (Fig. 17).
                for _ in 0..64 {
                    let x = mu + gaussian(rng) * sigma_x;
                    let y = mu + gaussian(rng) * sigma_y;
                    if (0.0..=self.field).contains(&x) && (0.0..=self.field).contains(&y) {
                        return Vec2::new(x, y);
                    }
                }
                Vec2::new(mu, mu)
            }
        }
    }
}

/// A standard normal draw via Box–Muller (rand_distr is outside the
/// dependency allowlist; two uniforms suffice).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_generates_valid_scenarios() {
        let spec = ScenarioSpec::paper_default();
        for seed in 0..3 {
            let s = spec.generate(seed);
            s.validate().unwrap();
            assert_eq!(s.num_chargers(), 50);
            assert_eq!(s.num_tasks(), 200);
            assert!((s.total_weight() - 1.0).abs() < 1e-9);
            assert!(s.grid.num_slots <= 120 + 120);
            for t in &s.tasks {
                assert!(t.duration_slots() >= 10 && t.duration_slots() <= 120);
                assert!(t.required_energy >= 5_000.0 && t.required_energy <= 20_000.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ScenarioSpec::small_scale();
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.chargers, b.chargers);
        assert_eq!(a.tasks, b.tasks);
        let c = spec.generate(8);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn gaussian_placement_concentrates() {
        let mut spec = ScenarioSpec::paper_default();
        spec.placement = Placement::Gaussian {
            sigma_x: 1.0,
            sigma_y: 1.0,
        };
        let s = spec.generate(1);
        let mu = spec.field / 2.0;
        let mean_dist = s
            .tasks
            .iter()
            .map(|t| t.device_pos.distance(Vec2::new(mu, mu)))
            .sum::<f64>()
            / s.tasks.len() as f64;
        assert!(mean_dist < 3.0, "tight Gaussian spread, got {mean_dist}");

        spec.placement = Placement::Gaussian {
            sigma_x: 50.0,
            sigma_y: 50.0,
        };
        let wide = spec.generate(1);
        let wide_dist = wide
            .tasks
            .iter()
            .map(|t| t.device_pos.distance(Vec2::new(mu, mu)))
            .sum::<f64>()
            / wide.tasks.len() as f64;
        assert!(wide_dist > mean_dist);
    }

    #[test]
    fn spec_roundtrips_check() {
        // PartialEq-based sanity: cloning preserves the recipe.
        let spec = ScenarioSpec::paper_default();
        assert_eq!(spec, spec.clone());
    }

    #[test]
    fn gaussian_helper_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
