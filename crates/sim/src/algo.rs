//! The algorithm roster experiments choose from.

use haste_core::{solve_baseline, solve_exact, solve_offline, BaselineKind, OfflineConfig};
use haste_distributed::{
    solve_baseline_online, solve_online, NegotiationConfig, OnlineConfig, OnlineResult,
};
use haste_model::{CoverageMap, Scenario};

/// One algorithm entry in a figure's legend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Centralized offline HASTE (Algorithm 2) with `C` colors.
    OfflineHaste {
        /// TabularGreedy color count.
        colors: usize,
    },
    /// Distributed online HASTE (Algorithm 3) with `C` colors.
    OnlineHaste {
        /// TabularGreedy color count.
        colors: usize,
    },
    /// A comparison baseline in the offline setting.
    OfflineBaseline(BaselineKind),
    /// A comparison baseline in the online setting (visibility delay `τ`).
    OnlineBaseline(BaselineKind),
    /// Brute-force HASTE-R optimum (upper bound on the HASTE optimum).
    Exact {
        /// Enumeration budget; instances above it return `None`.
        budget: u128,
    },
}

impl Algo {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Algo::OfflineHaste { colors } | Algo::OnlineHaste { colors } => {
                format!("HASTE(C={colors})")
            }
            Algo::OfflineBaseline(kind) | Algo::OnlineBaseline(kind) => kind.name().to_string(),
            Algo::Exact { .. } => "Optimal".to_string(),
        }
    }

    /// Runs the algorithm on a prepared scenario and returns the overall
    /// charging utility under full P1 semantics (for `Exact`, the HASTE-R
    /// optimum, an upper bound; `None` when enumeration exceeds its
    /// budget).
    ///
    /// `seed` feeds the randomized parts (TabularGreedy sampling, shared
    /// negotiation colors) so repetitions stay independent.
    pub fn run(&self, scenario: &Scenario, coverage: &CoverageMap, seed: u64) -> Option<f64> {
        match *self {
            Algo::OfflineHaste { colors } => {
                let result = solve_offline(
                    scenario,
                    coverage,
                    &OfflineConfig {
                        colors,
                        samples: samples_for(colors),
                        seed,
                        ..OfflineConfig::default()
                    },
                );
                Some(result.report.total_utility)
            }
            Algo::OnlineHaste { .. } => Some(
                self.run_online(scenario, coverage, seed)
                    .report
                    .total_utility,
            ),
            Algo::OfflineBaseline(kind) => Some(
                solve_baseline(scenario, coverage, kind)
                    .report
                    .total_utility,
            ),
            Algo::OnlineBaseline(kind) => Some(
                solve_baseline_online(scenario, coverage, kind)
                    .report
                    .total_utility,
            ),
            Algo::Exact { budget } => solve_exact(scenario, coverage, budget)
                .ok()
                .map(|r| r.relaxed_value),
        }
    }

    /// Runs the online variant returning the full result (used by the
    /// communication-cost experiment, Fig. 16).
    pub fn run_online(
        &self,
        scenario: &Scenario,
        coverage: &CoverageMap,
        seed: u64,
    ) -> OnlineResult {
        let colors = match *self {
            Algo::OnlineHaste { colors } => colors,
            _ => 1,
        };
        solve_online(
            scenario,
            coverage,
            &OnlineConfig {
                negotiation: NegotiationConfig {
                    colors,
                    samples: samples_for(colors),
                    seed,
                },
                ..OnlineConfig::default()
            },
        )
    }
}

/// Monte-Carlo sample count per color count: enough for a stable argmax
/// without blowing up the online sweeps (figure points are additionally
/// averaged over many topologies, which suppresses estimator noise).
fn samples_for(colors: usize) -> usize {
    if colors <= 1 {
        1
    } else {
        2 * colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ScenarioSpec;

    #[test]
    fn labels() {
        assert_eq!(Algo::OfflineHaste { colors: 4 }.label(), "HASTE(C=4)");
        assert_eq!(
            Algo::OfflineBaseline(BaselineKind::GreedyCover).label(),
            "GreedyCover"
        );
        assert_eq!(Algo::Exact { budget: 10 }.label(), "Optimal");
    }

    #[test]
    fn all_algorithms_run_on_a_small_instance() {
        let spec = ScenarioSpec::small_scale();
        let s = spec.generate(42);
        let cov = CoverageMap::build(&s);
        let algos = [
            Algo::OfflineHaste { colors: 1 },
            Algo::OfflineHaste { colors: 4 },
            Algo::OnlineHaste { colors: 1 },
            Algo::OfflineBaseline(BaselineKind::GreedyUtility),
            Algo::OfflineBaseline(BaselineKind::GreedyCover),
            Algo::OnlineBaseline(BaselineKind::GreedyUtility),
        ];
        for algo in algos {
            let v = algo.run(&s, &cov, 1).expect("runs");
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{}: {v}", algo.label());
        }
    }

    #[test]
    fn exact_budget_exhaustion_returns_none() {
        let spec = ScenarioSpec::small_scale();
        let s = spec.generate(42);
        let cov = CoverageMap::build(&s);
        assert_eq!(Algo::Exact { budget: 0 }.run(&s, &cov, 0), None);
    }

    #[test]
    fn exact_upper_bounds_heuristics_on_small_instance() {
        let spec = ScenarioSpec::small_scale();
        for seed in [3u64, 11] {
            let s = spec.generate(seed);
            let cov = CoverageMap::build(&s);
            let Some(opt) = (Algo::Exact { budget: 1 << 26 }).run(&s, &cov, 0) else {
                continue;
            };
            for algo in [
                Algo::OfflineHaste { colors: 1 },
                Algo::OnlineHaste { colors: 1 },
            ] {
                let v = algo.run(&s, &cov, seed).unwrap();
                assert!(
                    v <= opt + 1e-9,
                    "{} {v} exceeds optimum {opt}",
                    algo.label()
                );
            }
        }
    }
}
